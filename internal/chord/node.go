// Package chord implements the Chord distributed hash table protocol
// (Stoica et al., SIGCOMM'01), the overlay the paper builds PeerTrack
// on: "we adopt Chord as the overlay for its adaptiveness as nodes join
// and leave".
//
// The implementation is complete: 160-bit SHA-1 identifier ring, finger
// tables, successor lists, periodic stabilization with notify, finger
// repair, failure detection, voluntary leave, and iterative O(log N)
// lookup. It is transport-agnostic — the same node runs over the
// instrumented in-memory network used for experiments and over TCP.
package chord

import (
	"errors"
	"fmt"
	"sync"

	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

// Config tunes protocol parameters.
type Config struct {
	// SuccessorListLen is the number of successors tracked for fault
	// tolerance (Chord's r). Default 8.
	SuccessorListLen int
	// MaxLookupSteps bounds iterative lookup to defend against routing
	// loops on inconsistent rings. Default 2*Bits.
	MaxLookupSteps int
}

func (c *Config) fill() {
	if c.SuccessorListLen <= 0 {
		c.SuccessorListLen = 8
	}
	if c.MaxLookupSteps <= 0 {
		c.MaxLookupSteps = 2 * ids.Bits
	}
}

// Observer receives ownership-change callbacks so an application layer
// (the DHT store) can migrate keys. Callbacks run with the node lock
// released but may be invoked from RPC handler goroutines.
type Observer interface {
	// PredecessorChanged fires when the predecessor moves from old to
	// new. Keys in (old, new] no longer belong to this node.
	PredecessorChanged(old, new NodeRef)
}

// Node is one Chord participant.
type Node struct {
	self NodeRef
	net  transport.Network
	cfg  Config

	mu         sync.RWMutex
	pred       NodeRef
	successors []NodeRef // successors[0] is the immediate successor
	fingers    fingerTable
	nextFinger int
	observer   Observer
	appHandler transport.Handler
	left       bool

	// tel is set once at wiring time (before traffic) and read without
	// the lock on lookup/stabilize paths.
	tel nodeTelemetry
}

// ErrLeft is returned by operations on a node that has departed the
// ring.
var ErrLeft = errors.New("chord: node has left the ring")

// New creates a node addressed at addr whose ring position is
// SHA1(addr), and registers its RPC handler on net. The node starts as a
// single-node ring; call Join to enter an existing ring.
func New(net transport.Network, addr transport.Addr, cfg Config) (*Node, error) {
	return NewWithID(net, addr, ids.Hash([]byte(addr)), cfg)
}

// NewWithID is New with an explicit ring identifier, used by tests and
// by deterministic experiment rings.
func NewWithID(net transport.Network, addr transport.Addr, id ids.ID, cfg Config) (*Node, error) {
	cfg.fill()
	n := &Node{
		self: NodeRef{ID: id, Addr: addr},
		net:  net,
		cfg:  cfg,
	}
	n.successors = []NodeRef{n.self} // single-node ring points at itself
	if err := net.Register(addr, n.handleRPC); err != nil {
		return nil, fmt.Errorf("chord: register %s: %w", addr, err)
	}
	return n, nil
}

// NewPrebound creates a node whose transport handler has already been
// installed by the caller — used when the address is only known after
// binding (ephemeral TCP ports). The caller's handler must forward
// requests to (*Node).HandleRPC.
func NewPrebound(net transport.Network, addr transport.Addr, id ids.ID, cfg Config) *Node {
	return newUnregistered(net, addr, id, cfg)
}

func newUnregistered(net transport.Network, addr transport.Addr, id ids.ID, cfg Config) *Node {
	cfg.fill()
	n := &Node{
		self: NodeRef{ID: id, Addr: addr},
		net:  net,
		cfg:  cfg,
	}
	n.successors = []NodeRef{n.self}
	return n
}

// HandleRPC processes one inbound protocol message; exported for
// callers that own the transport registration (see NewPrebound).
func (n *Node) HandleRPC(from transport.Addr, req any) (any, error) {
	return n.handleRPC(from, req)
}

// SetObserver installs the ownership-change observer. Must be called
// before the node joins a ring.
func (n *Node) SetObserver(o Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observer = o
}

// Self returns this node's reference.
func (n *Node) Self() NodeRef { return n.self }

// ID returns this node's ring identifier.
func (n *Node) ID() ids.ID { return n.self.ID }

// Addr returns this node's transport address.
func (n *Node) Addr() transport.Addr { return n.self.Addr }

// Successor returns the current immediate successor.
func (n *Node) Successor() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.successors[0]
}

// Neighbors returns the successor list — the nodes that adopt this
// node's keys if it fails (overlay.Node interface).
func (n *Node) Neighbors() []NodeRef { return n.Successors() }

// Successors returns a copy of the successor list.
func (n *Node) Successors() []NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeRef, len(n.successors))
	copy(out, n.successors)
	return out
}

// SuccessorListLen returns the configured successor-list length r (the
// invariant checker compares actual lists against min(r, N-1)).
func (n *Node) SuccessorListLen() int { return n.cfg.SuccessorListLen }

// Predecessor returns the current predecessor (zero if unknown).
func (n *Node) Predecessor() NodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pred
}

// Owns reports whether this node is currently responsible for key, i.e.
// key ∈ (predecessor, self]. With an unknown predecessor a node claims
// only its own identifier.
func (n *Node) Owns(key ids.ID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.pred.IsZero() {
		return key == n.self.ID || n.successors[0].Equal(n.self) // single-node ring owns all
	}
	return ids.BetweenRightIncl(key, n.pred.ID, n.self.ID)
}

// handleRPC dispatches inbound protocol messages.
func (n *Node) handleRPC(from transport.Addr, req any) (any, error) {
	n.mu.RLock()
	left := n.left
	n.mu.RUnlock()
	if left {
		return nil, ErrLeft
	}
	switch r := req.(type) {
	case pingReq:
		return pingResp{Self: n.self}, nil
	case getStateReq:
		n.mu.RLock()
		resp := getStateResp{
			Self:       n.self,
			Successors: append([]NodeRef(nil), n.successors...),
			Pred:       n.pred,
		}
		n.mu.RUnlock()
		return resp, nil
	case closestPrecedingReq:
		return n.closestPreceding(r.Key), nil
	case notifyReq:
		n.notify(r.Candidate)
		return notifyResp{}, nil
	case leaveReq:
		n.handleLeave(r)
		return leaveResp{}, nil
	default:
		n.mu.RLock()
		app := n.appHandler
		n.mu.RUnlock()
		if app != nil {
			return app(from, req)
		}
		return nil, fmt.Errorf("chord: unknown request %T", req)
	}
}

// SetAppHandler installs the handler for application-level messages
// arriving at this node's address (anything the Chord protocol itself
// does not consume). Layers such as the DHT store and the traceability
// core chain through it.
func (n *Node) SetAppHandler(h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.appHandler = h
}

// closestPreceding implements closest_preceding_node(key) plus the
// termination test: if key falls between this node and its successor,
// the successor is the answer and the lookup is done.
func (n *Node) closestPreceding(key ids.ID) closestPrecedingResp {
	n.mu.RLock()
	defer n.mu.RUnlock()
	// A key this node owns terminates at this node. Routing normally
	// stops one hop earlier (the predecessor answers Done), but a detour
	// around a dead predecessor can land the lookup directly on the
	// owner — which must then claim the key instead of handing back a
	// finger that precedes it (circling the ring past the key forever).
	if !n.pred.IsZero() && ids.BetweenRightIncl(key, n.pred.ID, n.self.ID) {
		return closestPrecedingResp{Node: n.self, Done: true}
	}
	succ := n.successors[0]
	if ids.BetweenRightIncl(key, n.self.ID, succ.ID) {
		return closestPrecedingResp{Node: succ, Done: true}
	}
	// Scan fingers from the top for the closest node in (self, key).
	var hit NodeRef
	n.fingers.descend(func(f NodeRef) bool {
		if ids.Between(f.ID, n.self.ID, key) {
			hit = f
			return false
		}
		return true
	})
	if !hit.IsZero() {
		return closestPrecedingResp{Node: hit}
	}
	// Successor list as a fallback routing table.
	for i := len(n.successors) - 1; i >= 0; i-- {
		s := n.successors[i]
		if ids.Between(s.ID, n.self.ID, key) {
			return closestPrecedingResp{Node: s}
		}
	}
	return closestPrecedingResp{Node: succ}
}

// notify processes a predecessor candidacy (Chord's notify()).
func (n *Node) notify(cand NodeRef) {
	if cand.Equal(n.self) {
		return
	}
	n.mu.Lock()
	old := n.pred
	accept := old.IsZero() || ids.Between(cand.ID, old.ID, n.self.ID)
	var obs Observer
	if accept {
		n.pred = cand
		obs = n.observer
	}
	n.mu.Unlock()
	if accept && obs != nil && !old.Equal(cand) {
		obs.PredecessorChanged(old, cand)
	}
}

// handleLeave relinks around a voluntarily departing neighbour.
func (n *Node) handleLeave(r leaveReq) {
	n.mu.Lock()
	var obs Observer
	var oldPred NodeRef
	predChanged := false
	if !r.Pred.IsZero() && !n.pred.IsZero() && n.pred.Equal(r.Leaver) {
		// Our predecessor left; adopt its predecessor.
		oldPred = n.pred
		n.pred = r.Pred
		if r.Pred.Equal(n.self) {
			n.pred = NodeRef{}
		}
		obs = n.observer
		predChanged = true
	}
	if len(r.Successors) > 0 && n.successors[0].Equal(r.Leaver) {
		// Our successor left; adopt its successor list.
		succs := make([]NodeRef, 0, n.cfg.SuccessorListLen)
		for _, s := range r.Successors {
			if !s.Equal(r.Leaver) && !s.Equal(n.self) {
				succs = append(succs, s)
			}
		}
		if len(succs) == 0 {
			succs = []NodeRef{n.self}
		}
		n.successors = succs
		// Purge the leaver from fingers.
		n.fingers.purge(r.Leaver)
	}
	n.mu.Unlock()
	if predChanged && obs != nil {
		obs.PredecessorChanged(oldPred, r.Pred)
	}
}

// call is a typed RPC helper.
func (n *Node) call(to NodeRef, req any) (any, error) {
	if to.Addr == n.self.Addr {
		// Local shortcut: never pay transport cost to talk to yourself.
		return n.handleRPC(n.self.Addr, req)
	}
	return n.net.Call(n.self.Addr, to.Addr, req)
}

// Ping checks whether a node is alive.
func (n *Node) Ping(to NodeRef) bool {
	_, err := n.call(to, pingReq{})
	return err == nil
}
