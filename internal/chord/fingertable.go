package chord

import (
	"sort"

	"peertrack/internal/ids"
)

// fingerTable stores the ids.Bits-entry Chord finger array run-length
// encoded: run j covers finger indices [lo[j], lo[j+1]) — the last run
// extends to ids.Bits — and every entry in a run equals ref[j]. The
// empty table (no runs) encodes all-zero fingers.
//
// The encoding exploits that finger i points at successor(self+2^i):
// consecutive starts resolve to the same node until 2^i crosses the
// next ring gap, so a converged N-node ring has only ~log2 N distinct
// fingers among the 160 slots. A flat [160]NodeRef array costs 6.4 KB
// per node — the dominant per-node memory at XL network sizes — while
// the runs cost ~40 bytes per distinct finger.
type fingerTable struct {
	lo  []uint8   // first finger index of each run, ascending; lo[0] == 0
	ref []NodeRef // run values, parallel to lo
}

// runOf returns the index of the run containing finger i. The table
// must be non-empty.
func (t *fingerTable) runOf(i int) int {
	return sort.Search(len(t.lo), func(j int) bool { return int(t.lo[j]) > i }) - 1
}

// get returns finger i.
func (t *fingerTable) get(i int) NodeRef {
	if len(t.lo) == 0 {
		return NodeRef{}
	}
	return t.ref[t.runOf(i)]
}

// set updates finger i, splitting and re-merging runs as needed.
func (t *fingerTable) set(i int, r NodeRef) {
	if t.get(i).Equal(r) {
		return
	}
	if len(t.lo) == 0 {
		t.lo = append(t.lo, 0)
		t.ref = append(t.ref, NodeRef{})
	}
	j := t.runOf(i)
	start := int(t.lo[j])
	end := ids.Bits
	if j+1 < len(t.lo) {
		end = int(t.lo[j+1])
	}
	old := t.ref[j]
	// Replace run j with up to three runs covering the same span.
	var splitLo [3]uint8
	var splitRef [3]NodeRef
	k := 0
	if i > start {
		splitLo[k], splitRef[k] = uint8(start), old
		k++
	}
	splitLo[k], splitRef[k] = uint8(i), r
	k++
	if i+1 < end {
		splitLo[k], splitRef[k] = uint8(i+1), old
		k++
	}
	t.lo = append(t.lo[:j], append(splitLo[:k:k], t.lo[j+1:]...)...)
	t.ref = append(t.ref[:j], append(splitRef[:k:k], t.ref[j+1:]...)...)
	t.normalize()
}

// purge zeroes every finger equal to victim (a departed node).
func (t *fingerTable) purge(victim NodeRef) {
	changed := false
	for j := range t.ref {
		if t.ref[j].Equal(victim) {
			t.ref[j] = NodeRef{}
			changed = true
		}
	}
	if changed {
		t.normalize()
	}
}

// normalize merges adjacent runs with equal values in place.
func (t *fingerTable) normalize() {
	w := 0
	for j := 0; j < len(t.lo); j++ {
		if w > 0 && t.ref[w-1].Equal(t.ref[j]) {
			continue
		}
		t.lo[w], t.ref[w] = t.lo[j], t.ref[j]
		w++
	}
	for j := w; j < len(t.ref); j++ {
		t.ref[j] = NodeRef{} // release Addr strings
	}
	t.lo, t.ref = t.lo[:w], t.ref[:w]
	if w == 1 && t.ref[0].IsZero() {
		t.lo, t.ref = t.lo[:0], t.ref[:0]
	}
}

// descend calls fn for each distinct finger value from the top of the
// table downward, skipping zero entries, and stops early when fn
// returns false. This visits the same values in the same order as a
// descending scan of the flat array visiting each run's first (highest)
// occurrence, which is what closest-preceding routing needs.
func (t *fingerTable) descend(fn func(NodeRef) bool) {
	for j := len(t.ref) - 1; j >= 0; j-- {
		if t.ref[j].IsZero() {
			continue
		}
		if !fn(t.ref[j]) {
			return
		}
	}
}

// replace installs exactly the given runs, copying them into
// right-sized backing arrays (bulk wiring builds runs in a shared
// scratch buffer; the copy avoids carrying append slack on every node).
func (t *fingerTable) replace(lo []uint8, ref []NodeRef) {
	t.lo = append(make([]uint8, 0, len(lo)), lo...)
	t.ref = append(make([]NodeRef, 0, len(ref)), ref...)
}
