package chord_test

// Repair-latency regression: the same segment-crash scenario run twice,
// once on stabilization alone and once with gossip samples feeding
// RepairFromSamples ahead of each stabilize round. The chord-only
// baseline is pinned — a segment at least as long as the successor list
// strands the preceding survivor, so stabilization exhausts the whole
// round budget and still fails — and the gossip-assisted run must
// reconverge in strictly fewer rounds. Lives in the external test
// package like the other churn regressions (invariants imports chord).

import (
	"fmt"
	"sort"
	"testing"

	"peertrack/internal/chord"
	"peertrack/internal/gossip"
	"peertrack/internal/invariants"
	"peertrack/internal/transport"
)

const (
	repairNodes   = 16
	repairSuccs   = 3
	repairSegment = repairSuccs + 1
	repairBudget  = 20
)

// repairScenario builds a static ring, optionally attaches gossip
// agents (with warm views), crashes a deterministic ring segment, and
// returns the maintenance rounds consumed plus any residual violations.
func repairScenario(t *testing.T, seed int64, withGossip bool) (int, []invariants.Violation) {
	t.Helper()
	mem := transport.NewMemory(seed)
	addrs := make([]transport.Addr, repairNodes)
	for i := range addrs {
		addrs[i] = transport.Addr(fmt.Sprintf("repair-%03d", i))
	}
	nodes, err := chord.BuildStaticRing(mem, addrs, chord.Config{SuccessorListLen: repairSuccs})
	if err != nil {
		t.Fatal(err)
	}

	agents := map[transport.Addr]*gossip.Agent{}
	if withGossip {
		for _, n := range nodes {
			n := n
			a := gossip.New(mem, n.Self(), gossip.Config{Seed: gossip.SeedFor(seed, n.Addr())})
			n.SetAppHandler(func(from transport.Addr, req any) (any, error) {
				if resp, handled, err := a.HandleRPC(from, req); handled {
					return resp, err
				}
				return nil, fmt.Errorf("unhandled %T", req)
			})
			a.SeedView(n.Successors())
			agents[n.Addr()] = a
		}
		for w := 0; w < 8; w++ {
			for _, n := range nodes {
				agents[n.Addr()].Round()
			}
		}
	}

	// Crash the segment immediately after the first node in ring order:
	// the survivor's successor list (length repairSuccs) lies entirely
	// inside the crashed run of repairSegment nodes.
	ring := append([]*chord.Node(nil), nodes...)
	sort.Slice(ring, func(i, j int) bool { return ring[i].ID().Less(ring[j].ID()) })
	dead := map[transport.Addr]bool{}
	for i := 0; i < repairSegment; i++ {
		victim := ring[1+i]
		mem.Kill(victim.Addr())
		dead[victim.Addr()] = true
		if a := agents[victim.Addr()]; a != nil {
			a.Stop()
		}
	}
	live := make([]*chord.Node, 0, repairNodes-repairSegment)
	for _, n := range ring {
		if !dead[n.Addr()] {
			live = append(live, n)
		}
	}

	maintain := func() {
		for _, n := range live {
			if a := agents[n.Addr()]; a != nil {
				a.Round()
				n.RepairFromSamples(a.Samples(), a.IsDead)
			}
			n.CheckPredecessor()
			if err := n.Stabilize(); err != nil {
				if a := agents[n.Addr()]; a != nil {
					for _, s := range n.Successors() {
						if !s.Equal(n.Self()) {
							a.Suspect(s)
						}
					}
				}
			}
			n.FixFingers()
		}
	}
	return invariants.CheckReconvergence(live, maintain, repairBudget)
}

// TestRepairLatencyImprovesWithGossip pins the comparison on several
// seeds: chord-only consumes the full budget and still fails (the
// stranded-survivor baseline), gossip-assisted converges in strictly
// fewer rounds with no violations.
func TestRepairLatencyImprovesWithGossip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		baseRounds, baseViolations := repairScenario(t, seed, false)
		if len(baseViolations) == 0 {
			t.Fatalf("seed %d: chord-only baseline unexpectedly reconverged in %d rounds — scenario no longer strands", seed, baseRounds)
		}
		if baseRounds != repairBudget {
			t.Errorf("seed %d: chord-only consumed %d rounds, pinned baseline is the full budget %d", seed, baseRounds, repairBudget)
		}
		if baseViolations[0].Invariant != "ring-reconverge" {
			t.Errorf("seed %d: baseline failed with %q, want ring-reconverge", seed, baseViolations[0].Invariant)
		}

		gossipRounds, gossipViolations := repairScenario(t, seed, true)
		for _, v := range gossipViolations {
			t.Errorf("seed %d: gossip-assisted: %s", seed, v)
		}
		if gossipRounds >= baseRounds {
			t.Errorf("seed %d: gossip repair latency %d not strictly below chord-only %d", seed, gossipRounds, baseRounds)
		}
	}
}

// TestRepairLatencyDeterministic pins that the measured latencies are a
// pure function of the seed.
func TestRepairLatencyDeterministic(t *testing.T) {
	a1, _ := repairScenario(t, 9, true)
	a2, _ := repairScenario(t, 9, true)
	if a1 != a2 {
		t.Errorf("same seed, different gossip repair latency: %d vs %d", a1, a2)
	}
}
