package chord

import (
	"fmt"
	"math/rand"
	"testing"

	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

func addrs(n int) []transport.Addr {
	out := make([]transport.Addr, n)
	for i := range out {
		out[i] = transport.Addr(fmt.Sprintf("node-%03d", i))
	}
	return out
}

func staticRing(t testing.TB, n int) (*transport.Memory, []*Node) {
	t.Helper()
	net := transport.NewMemory(1)
	nodes, err := BuildStaticRing(net, addrs(n), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net, nodes
}

func refsOf(nodes []*Node) []NodeRef {
	refs := make([]NodeRef, len(nodes))
	for i, n := range nodes {
		refs[i] = n.Self()
	}
	return refs
}

func TestSingleNodeRingOwnsEverything(t *testing.T) {
	net := transport.NewMemory(1)
	n, err := New(net, "solo", Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []ids.ID{ids.HashString("a"), ids.HashString("b"), {}} {
		if !n.Owns(key) {
			t.Errorf("single node does not own %s", key.Short())
		}
		res, err := n.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Node.Equal(n.Self()) || res.Hops != 0 {
			t.Errorf("lookup %s = %+v", key.Short(), res)
		}
	}
}

func TestStaticRingLookupCorrectness(t *testing.T) {
	_, nodes := staticRing(t, 64)
	refs := refsOf(nodes)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		key := ids.HashString(fmt.Sprintf("key-%d", r.Int63()))
		want := SuccessorOf(refs, key)
		start := nodes[r.Intn(len(nodes))]
		res, err := start.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Node.Equal(want) {
			t.Fatalf("lookup %s from %s = %s, want %s",
				key.Short(), start.Addr(), res.Node.Addr, want.Addr)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	_, nodes := staticRing(t, 256)
	r := rand.New(rand.NewSource(3))
	total, count := 0, 0
	maxHops := 0
	for i := 0; i < 300; i++ {
		key := ids.HashString(fmt.Sprintf("k%d", i))
		start := nodes[r.Intn(len(nodes))]
		res, err := start.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hops
		count++
		if res.Hops > maxHops {
			maxHops = res.Hops
		}
	}
	avg := float64(total) / float64(count)
	// log2(256) = 8; average should be around half of that, and far
	// below linear scanning.
	if avg > 10 {
		t.Errorf("average hops = %.2f, want <= 10 for 256 nodes", avg)
	}
	if maxHops > 20 {
		t.Errorf("max hops = %d, want <= 20", maxHops)
	}
}

func TestLookupKeyEqualsNodeID(t *testing.T) {
	_, nodes := staticRing(t, 16)
	// A key equal to a node's id is owned by that node.
	for _, n := range nodes {
		res, err := nodes[0].Lookup(n.ID())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Node.Equal(n.Self()) {
			t.Fatalf("lookup of node id %s landed on %s", n.Addr(), res.Node.Addr)
		}
	}
}

func TestOwnershipPartitionsRing(t *testing.T) {
	_, nodes := staticRing(t, 32)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		key := ids.HashString(fmt.Sprintf("part-%d", r.Int63()))
		owners := 0
		for _, n := range nodes {
			if n.Owns(key) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %s owned by %d nodes", key.Short(), owners)
		}
	}
}

func TestProtocolRingConverges(t *testing.T) {
	net := transport.NewMemory(1)
	nodes, err := BuildRing(net, addrs(24), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !Converged(nodes) {
		t.Fatal("protocol-built ring did not converge")
	}
	// Lookups on the protocol-built ring are correct.
	refs := refsOf(nodes)
	SortRefs(refs)
	for i := 0; i < 100; i++ {
		key := ids.HashString(fmt.Sprintf("pk%d", i))
		res, err := nodes[i%len(nodes)].Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if want := SuccessorOf(refs, key); !res.Node.Equal(want) {
			t.Fatalf("lookup %s = %s, want %s", key.Short(), res.Node.Addr, want.Addr)
		}
	}
}

func TestJoinGrowsRing(t *testing.T) {
	net := transport.NewMemory(1)
	a, _ := New(net, "a", Config{})
	b, _ := New(net, "b", Config{})
	if err := b.Join(a.Self()); err != nil {
		t.Fatal(err)
	}
	StabilizeAll([]*Node{a, b}, 4)
	if !Converged([]*Node{a, b}) {
		t.Fatalf("2-node ring not converged: a.succ=%s a.pred=%s b.succ=%s b.pred=%s",
			a.Successor().Addr, a.Predecessor().Addr, b.Successor().Addr, b.Predecessor().Addr)
	}
}

func TestJoinThroughSelfFails(t *testing.T) {
	net := transport.NewMemory(1)
	a, _ := New(net, "a", Config{})
	if err := a.Join(a.Self()); err == nil {
		t.Fatal("join through self succeeded")
	}
}

func TestVoluntaryLeaveRelinksRing(t *testing.T) {
	net := transport.NewMemory(1)
	nodes, err := BuildRing(net, addrs(10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	leaver := nodes[4]
	if err := leaver.Leave(); err != nil {
		t.Fatal(err)
	}
	rest := append(append([]*Node{}, nodes[:4]...), nodes[5:]...)
	StabilizeAll(rest, 6)
	if !Converged(nodes) { // Converged skips departed nodes
		t.Fatal("ring not converged after voluntary leave")
	}
	// Keys previously owned by the leaver now resolve to its successor.
	refs := refsOf(rest)
	SortRefs(refs)
	for i := 0; i < 50; i++ {
		key := ids.HashString(fmt.Sprintf("lk%d", i))
		res, err := rest[i%len(rest)].Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if want := SuccessorOf(refs, key); !res.Node.Equal(want) {
			t.Fatalf("post-leave lookup %s = %s, want %s", key.Short(), res.Node.Addr, want.Addr)
		}
	}
	if err := leaver.Leave(); err != ErrLeft {
		t.Errorf("second Leave = %v, want ErrLeft", err)
	}
}

// TestRejoinWithSameIdentity crashes a node and rejoins it immediately
// under the same address — and therefore the same ID — before any
// survivor has evicted the stale entry. The join lookup for the
// reborn node's own ID resolves to its previous incarnation (itself);
// Join must treat that as "the ring still remembers me" and fall back
// to a provisional successor rather than failing, and stabilization
// must then converge the full ring including the reborn node.
func TestRejoinWithSameIdentity(t *testing.T) {
	net := transport.NewMemory(1)
	nodes, err := BuildRing(net, addrs(12), Config{})
	if err != nil {
		t.Fatal(err)
	}
	victim := nodes[7]
	addr := victim.Addr()
	net.Kill(addr)

	reborn, err := New(net, addr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := reborn.Join(nodes[0].Self()); err != nil {
		t.Fatalf("rejoin with same identity: %v", err)
	}

	live := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if n == victim {
			n = reborn
		}
		live = append(live, n)
	}
	for r := 0; r < 20; r++ {
		for _, n := range live {
			n.CheckPredecessor()
			n.Stabilize()
		}
	}
	for _, n := range live {
		n.FixAllFingers()
	}
	refs := refsOf(live)
	SortRefs(refs)
	hitReborn := false
	for i := 0; i < 100; i++ {
		key := ids.HashString(fmt.Sprintf("rj%d", i))
		res, err := live[i%len(live)].Lookup(key)
		if err != nil {
			t.Fatalf("lookup after rejoin: %v", err)
		}
		want := SuccessorOf(refs, key)
		if !res.Node.Equal(want) {
			t.Fatalf("post-rejoin lookup %s = %s, want %s", key.Short(), res.Node.Addr, want.Addr)
		}
		if want.Addr == addr {
			hitReborn = true
		}
	}
	if !hitReborn {
		t.Fatal("no lookup key landed on the reborn node; test proves nothing")
	}
}

func TestCrashRecoveryViaStabilization(t *testing.T) {
	net := transport.NewMemory(1)
	nodes, err := BuildRing(net, addrs(12), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Crash two non-adjacent nodes without warning.
	net.Kill(nodes[3].Addr())
	net.Kill(nodes[8].Addr())
	crashed := map[int]bool{3: true, 8: true}
	live := make([]*Node, 0, 10)
	for i, n := range nodes {
		if !crashed[i] {
			live = append(live, n)
		}
	}
	for r := 0; r < 10; r++ {
		for _, n := range live {
			n.CheckPredecessor()
			n.Stabilize()
		}
	}
	for _, n := range live {
		n.FixAllFingers()
	}
	refs := refsOf(live)
	SortRefs(refs)
	for i := 0; i < 100; i++ {
		key := ids.HashString(fmt.Sprintf("ck%d", i))
		res, err := live[i%len(live)].Lookup(key)
		if err != nil {
			t.Fatalf("lookup after crashes: %v", err)
		}
		if want := SuccessorOf(refs, key); !res.Node.Equal(want) {
			t.Fatalf("post-crash lookup %s = %s, want %s", key.Short(), res.Node.Addr, want.Addr)
		}
	}
}

type recordingObserver struct {
	changes []NodeRef
}

func (r *recordingObserver) PredecessorChanged(old, new NodeRef) {
	r.changes = append(r.changes, new)
}

func TestObserverFiresOnPredecessorChange(t *testing.T) {
	net := transport.NewMemory(1)
	a, _ := New(net, "a", Config{})
	obs := &recordingObserver{}
	a.SetObserver(obs)
	b, _ := New(net, "b", Config{})
	if err := b.Join(a.Self()); err != nil {
		t.Fatal(err)
	}
	StabilizeAll([]*Node{a, b}, 4)
	if len(obs.changes) == 0 {
		t.Fatal("observer never fired")
	}
	if last := obs.changes[len(obs.changes)-1]; !last.Equal(b.Self()) {
		t.Errorf("final predecessor = %s, want b", last.Addr)
	}
}

func TestPingDeadNode(t *testing.T) {
	net := transport.NewMemory(1)
	a, _ := New(net, "a", Config{})
	b, _ := New(net, "b", Config{})
	if !a.Ping(b.Self()) {
		t.Error("ping live node failed")
	}
	net.Kill("b")
	if a.Ping(b.Self()) {
		t.Error("ping dead node succeeded")
	}
}

func TestStaticRingMatchesProtocolRing(t *testing.T) {
	// The static wiring must equal what the protocol converges to.
	netA := transport.NewMemory(1)
	protoNodes, err := BuildRing(netA, addrs(16), Config{})
	if err != nil {
		t.Fatal(err)
	}
	netB := transport.NewMemory(1)
	staticNodes, err := BuildStaticRing(netB, addrs(16), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range protoNodes {
		p, s := protoNodes[i], staticNodes[i]
		if p.Addr() != s.Addr() {
			t.Fatalf("sort order differs at %d: %s vs %s", i, p.Addr(), s.Addr())
		}
		if !p.Successor().Equal(s.Successor()) {
			t.Errorf("%s successor: proto %s, static %s", p.Addr(), p.Successor().Addr, s.Successor().Addr)
		}
		if !p.Predecessor().Equal(s.Predecessor()) {
			t.Errorf("%s predecessor: proto %s, static %s", p.Addr(), p.Predecessor().Addr, s.Predecessor().Addr)
		}
	}
}

func TestLookupFromEveryNodeAgrees(t *testing.T) {
	_, nodes := staticRing(t, 40)
	key := ids.HashString("the-one-key")
	var owner NodeRef
	for i, n := range nodes {
		res, err := n.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			owner = res.Node
		} else if !res.Node.Equal(owner) {
			t.Fatalf("node %s resolved %s, node 0 resolved %s", n.Addr(), res.Node.Addr, owner.Addr)
		}
	}
}

func TestChordOverTCP(t *testing.T) {
	tr := NewTCPHarness(t)
	defer tr.Close()
	a := tr.NewNode("a")
	b := tr.NewNode("b")
	c := tr.NewNode("c")
	if err := b.Join(a.Self()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(a.Self()); err != nil {
		t.Fatal(err)
	}
	all := []*Node{a, b, c}
	StabilizeAll(all, 6)
	for _, n := range all {
		n.FixAllFingers()
	}
	if !Converged(all) {
		t.Fatal("TCP ring did not converge")
	}
	refs := refsOf(all)
	SortRefs(refs)
	for i := 0; i < 30; i++ {
		key := ids.HashString(fmt.Sprintf("tcp-%d", i))
		res, err := all[i%3].Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if want := SuccessorOf(refs, key); !res.Node.Equal(want) {
			t.Fatalf("tcp lookup %s = %s, want %s", key.Short(), res.Node.Addr, want.Addr)
		}
	}
}

// NewTCPHarness builds Chord nodes over loopback TCP for tests.
type TCPHarness struct {
	t  testing.TB
	tr *transport.TCP
}

func NewTCPHarness(t testing.TB) *TCPHarness {
	return &TCPHarness{t: t, tr: transport.NewTCP()}
}

func (h *TCPHarness) NewNode(name string) *Node {
	// Two-phase: bind first to learn the port, then create the node on
	// that address. A placeholder handler forwards to the node once set.
	var n *Node
	addr, err := h.tr.RegisterAuto("127.0.0.1", func(from transport.Addr, req any) (any, error) {
		if n == nil {
			return nil, fmt.Errorf("node %s not ready", name)
		}
		return n.handleRPC(from, req)
	})
	if err != nil {
		h.t.Fatal(err)
	}
	n = newUnregistered(h.tr, addr, ids.Hash([]byte(addr)), Config{})
	return n
}

func (h *TCPHarness) Close() { h.tr.Close() }

func BenchmarkLookup256(b *testing.B) {
	_, nodes := staticRing(b, 256)
	r := rand.New(rand.NewSource(1))
	keys := make([]ids.ID, 1024)
	for i := range keys {
		keys[i] = ids.HashString(fmt.Sprintf("bench-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := nodes[r.Intn(len(nodes))]
		if _, err := n.Lookup(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}
