package chord

import (
	"fmt"
	"sort"

	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

// BuildRing constructs a ring over the given addresses using the real
// protocol: each node joins through the first and the ring is
// stabilized to convergence with exact finger tables. Returns the nodes
// sorted by ring identifier.
func BuildRing(net transport.Network, addrs []transport.Addr, cfg Config) ([]*Node, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("chord: empty ring")
	}
	nodes := make([]*Node, 0, len(addrs))
	for _, a := range addrs {
		n, err := New(net, a, cfg)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	for i := 1; i < len(nodes); i++ {
		if err := nodes[i].Join(nodes[0].Self()); err != nil {
			return nil, fmt.Errorf("chord: join %s: %w", nodes[i].Addr(), err)
		}
		// Stabilizing as we go keeps join lookups correct.
		nodes[i].Stabilize()
		nodes[0].Stabilize()
	}
	// Sequential joins through a single bootstrap can need O(n) rounds
	// to converge; iterate until the ring is consistent.
	maxRounds := 3*len(nodes) + 8
	converged := false
	for r := 0; r < maxRounds; r += 2 {
		if err := StabilizeAll(nodes, 2); err != nil {
			return nil, err
		}
		if Converged(nodes) {
			converged = true
			break
		}
	}
	if !converged {
		return nil, fmt.Errorf("chord: ring of %d nodes failed to converge after %d rounds", len(nodes), maxRounds)
	}
	for _, n := range nodes {
		if err := n.FixAllFingers(); err != nil {
			return nil, fmt.Errorf("chord: fix fingers %s: %w", n.Addr(), err)
		}
	}
	SortByID(nodes)
	return nodes, nil
}

// BuildStaticRing constructs a fully converged ring by computing every
// node's predecessor, successor list and finger table directly, without
// protocol traffic. Experiments use it so that ring construction does
// not pollute message counts; the resulting state is exactly what
// protocol-based construction converges to. Returns the nodes sorted by
// ring identifier.
func BuildStaticRing(net transport.Network, addrs []transport.Addr, cfg Config) ([]*Node, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("chord: empty ring")
	}
	nodes := make([]*Node, 0, len(addrs))
	for _, a := range addrs {
		n, err := New(net, a, cfg)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	WireStaticRing(nodes)
	return nodes, nil
}

// WireStaticRing sets exact routing state on the given nodes and sorts
// them by identifier in place.
//
// Successor lists are sub-sliced out of one shared arena (one
// allocation for the whole ring instead of one per node), and finger
// tables are built run-length encoded with a monotone scan: the finger
// starts self+2^f increase with f and wrap past the ring top at most
// once, so a single advancing pointer over the sorted refs replaces
// ids.Bits binary searches per node. Both matter at XL ring sizes.
func WireStaticRing(nodes []*Node) {
	SortByID(nodes)
	m := len(nodes)
	refs := make([]NodeRef, m)
	for i, n := range nodes {
		refs[i] = n.Self()
	}
	var arena []NodeRef
	if m > 1 {
		sl := nodes[0].cfg.SuccessorListLen
		if sl > m-1 {
			sl = m - 1
		}
		arena = make([]NodeRef, 0, m*sl)
	}
	// Scratch run buffers reused across nodes; each node copies out an
	// exactly-sized table.
	scratchLo := make([]uint8, 0, 64)
	scratchRef := make([]NodeRef, 0, 64)
	for i, n := range nodes {
		n.mu.Lock()
		n.pred = refs[(i-1+m)%m]
		if m == 1 {
			n.pred = NodeRef{}
		}
		sl := n.cfg.SuccessorListLen
		if sl > m-1 && m > 1 {
			sl = m - 1
		}
		if m == 1 {
			n.successors = []NodeRef{n.self}
		} else {
			base := len(arena)
			for k := 1; k <= sl; k++ {
				arena = append(arena, refs[(i+k)%m])
			}
			n.successors = arena[base:len(arena):len(arena)]
		}
		scratchLo, scratchRef = scratchLo[:0], scratchRef[:0]
		prev := n.self.ID.AddPow2(0)
		// Raw insertion point (may be m, meaning wrap): the monotone
		// scan below applies the wrap itself.
		j := sort.Search(m, func(k int) bool { return refs[k].ID.Cmp(prev) >= 0 })
		for f := 0; f < ids.Bits; f++ {
			start := n.self.ID.AddPow2(f)
			if start.Cmp(prev) < 0 {
				j = 0 // wrapped past the ring top; restart at the smallest id
			}
			for j < m && refs[j].ID.Cmp(start) < 0 {
				j++
			}
			idx := j
			if idx == m {
				idx = 0
			}
			r := refs[idx]
			if len(scratchRef) == 0 || !scratchRef[len(scratchRef)-1].Equal(r) {
				scratchLo = append(scratchLo, uint8(f))
				scratchRef = append(scratchRef, r)
			}
			prev = start
		}
		n.fingers.replace(scratchLo, scratchRef)
		n.mu.Unlock()
	}
}

// successorIndex returns the index in refs (sorted by ID) of the
// successor of key: the first node whose ID >= key, wrapping to 0.
func successorIndex(refs []NodeRef, key ids.ID) int {
	i := sort.Search(len(refs), func(i int) bool {
		return refs[i].ID.Cmp(key) >= 0
	})
	if i == len(refs) {
		return 0
	}
	return i
}

// SuccessorOf returns the reference among refs responsible for key.
// refs must be sorted by ID. This is the ground-truth ownership oracle
// used by tests and by experiment verification.
func SuccessorOf(refs []NodeRef, key ids.ID) NodeRef {
	return refs[successorIndex(refs, key)]
}

// SortByID orders nodes by ring identifier.
func SortByID(nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].ID().Less(nodes[j].ID())
	})
}

// SortRefs orders node references by ring identifier.
func SortRefs(refs []NodeRef) {
	sort.Slice(refs, func(i, j int) bool {
		return refs[i].ID.Less(refs[j].ID)
	})
}

// StabilizeAll runs the given number of full stabilization rounds over
// all nodes.
func StabilizeAll(nodes []*Node, rounds int) error {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			if n.Left() {
				continue
			}
			if err := n.Stabilize(); err != nil {
				return fmt.Errorf("chord: stabilize %s: %w", n.Addr(), err)
			}
		}
	}
	return nil
}

// Converged verifies that every node's successor and predecessor agree
// with the sorted ring order; used by tests.
func Converged(nodes []*Node) bool {
	live := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.Left() {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return true
	}
	sorted := append([]*Node(nil), live...)
	SortByID(sorted)
	m := len(sorted)
	for i, n := range sorted {
		wantSucc := sorted[(i+1)%m].Self()
		wantPred := sorted[(i-1+m)%m].Self()
		if m == 1 {
			if !n.Successor().Equal(n.Self()) {
				return false
			}
			continue
		}
		if !n.Successor().Equal(wantSucc) {
			return false
		}
		if !n.Predecessor().Equal(wantPred) {
			return false
		}
	}
	return true
}
