package chord

import (
	"sort"

	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

// RepairFromSamples merges externally supplied peer samples (from the
// gossip membership layer) into the successor list, ahead of a
// stabilize round. Candidates — the current successors plus the samples
// — are ranked by clockwise ring distance from this node and the
// nearest r are kept, so a sample that sits between this node and its
// current successor slots into place immediately instead of waiting for
// notify/stabilize propagation to discover it. It returns the number of
// entries that entered the list.
//
// Samples are not liveness-validated here: a stale sample costs the
// next Stabilize one failed call (it skips to the first live entry),
// while a fresh one repairs a partition of dead successors that
// stabilization alone can never escape — once every entry in the list
// is dead, Stabilize has no live peer to learn from and the node is
// stranded until some external source of peers arrives. Gossip is that
// source.
//
// The dead filter (nil to keep everything) is the other half of the
// escape: current successors the caller's failure detector has
// condemned are dropped from the candidate set. Without it a fully dead
// list keeps winning — its entries sit closer in ring distance than any
// live sample, so they would refill the r slots forever.
func (n *Node) RepairFromSamples(samples []NodeRef, dead func(transport.Addr) bool) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.left || len(samples) == 0 {
		return 0
	}

	cands := make([]NodeRef, 0, len(n.successors)+len(samples))
	for _, s := range n.successors {
		if dead != nil && dead(s.Addr) {
			continue
		}
		cands = append(cands, s)
	}
	for _, s := range samples {
		if s.IsZero() || s.Equal(n.self) {
			continue
		}
		if dead != nil && dead(s.Addr) {
			continue
		}
		cands = append(cands, s)
	}
	// Rank by clockwise distance from self; dedup by address keeping
	// ring order (equal addresses have equal IDs, so order within a
	// duplicate group is immaterial).
	sort.Slice(cands, func(i, j int) bool {
		di := ids.Distance(n.self.ID, cands[i].ID)
		dj := ids.Distance(n.self.ID, cands[j].ID)
		if c := di.Cmp(dj); c != 0 {
			return c < 0
		}
		return cands[i].Addr < cands[j].Addr
	})
	newList := make([]NodeRef, 0, n.cfg.SuccessorListLen)
	for _, c := range cands {
		if len(newList) >= n.cfg.SuccessorListLen {
			break
		}
		if len(newList) > 0 && newList[len(newList)-1].Equal(c) {
			continue
		}
		newList = append(newList, c)
	}
	if len(newList) == 0 {
		return 0
	}

	inserted := 0
	for _, c := range newList {
		known := false
		for _, s := range n.successors {
			if s.Equal(c) {
				known = true
				break
			}
		}
		if !known {
			inserted++
		}
	}
	n.successors = newList
	n.fingers.set(0, newList[0])
	if inserted > 0 {
		n.tel.sampleRepairs.Add(uint64(inserted))
	}
	return inserted
}
