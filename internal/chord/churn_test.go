package chord

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

// TestChurnStorm interleaves joins, voluntary leaves, crashes, and
// lookups over many rounds: after each settling period every lookup
// must resolve to the true successor among live nodes.
func TestChurnStorm(t *testing.T) {
	net := transport.NewMemory(1)
	r := rand.New(rand.NewSource(17))

	alive := make(map[transport.Addr]*Node)
	var seq int
	newNode := func() *Node {
		seq++
		n, err := New(net, transport.Addr(fmt.Sprintf("storm-%03d", seq)), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Bootstrap a 12-node ring with the protocol.
	first := newNode()
	alive[first.Addr()] = first
	for i := 0; i < 11; i++ {
		n := newNode()
		if err := n.Join(first.Self()); err != nil {
			t.Fatal(err)
		}
		alive[n.Addr()] = n
		settle(alive)
	}

	anyNode := func() *Node {
		for _, n := range alive {
			return n
		}
		return nil
	}

	for round := 0; round < 12; round++ {
		switch r.Intn(3) {
		case 0: // join
			n := newNode()
			if err := n.Join(anyNode().Self()); err != nil {
				t.Fatalf("round %d join: %v", round, err)
			}
			alive[n.Addr()] = n
		case 1: // voluntary leave
			if len(alive) > 4 {
				victim := pick(r, alive)
				if err := victim.Leave(); err != nil {
					t.Fatalf("round %d leave: %v", round, err)
				}
				delete(alive, victim.Addr())
			}
		case 2: // crash
			if len(alive) > 4 {
				victim := pick(r, alive)
				net.Kill(victim.Addr())
				delete(alive, victim.Addr())
			}
		}
		settle(alive)

		// Verify lookups against the ground truth.
		refs := make([]NodeRef, 0, len(alive))
		for _, n := range alive {
			refs = append(refs, n.Self())
		}
		SortRefs(refs)
		for q := 0; q < 20; q++ {
			key := ids.HashString(fmt.Sprintf("storm-key-%d-%d", round, q))
			want := SuccessorOf(refs, key)
			res, err := anyNode().Lookup(key)
			if err != nil {
				t.Fatalf("round %d lookup: %v", round, err)
			}
			if !res.Node.Equal(want) {
				t.Fatalf("round %d: lookup %s = %s, want %s (n=%d)",
					round, key.Short(), res.Node.Addr, want.Addr, len(alive))
			}
		}
	}
}

func pick(r *rand.Rand, m map[transport.Addr]*Node) *Node {
	keys := make([]transport.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Deterministic order for reproducibility.
	SortAddrs(keys)
	return m[keys[r.Intn(len(keys))]]
}

// SortAddrs orders addresses lexicographically (test helper).
func SortAddrs(addrs []transport.Addr) {
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j] < addrs[j-1]; j-- {
			addrs[j], addrs[j-1] = addrs[j-1], addrs[j]
		}
	}
}

// settle runs maintenance until the live membership converges. Nodes
// are visited in address order: maintenance order affects the
// stabilization path, and map order would make seeded runs diverge.
func settle(alive map[transport.Addr]*Node) {
	nodes := make([]*Node, 0, len(alive))
	for _, n := range alive {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Addr() < nodes[j].Addr() })
	for r := 0; r < 4*len(nodes)+8; r++ {
		for _, n := range nodes {
			n.CheckPredecessor()
			n.Stabilize()
		}
		if Converged(nodes) {
			break
		}
	}
	for _, n := range nodes {
		n.FixAllFingers()
	}
}
