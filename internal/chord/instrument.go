package chord

import "peertrack/internal/telemetry"

// nodeTelemetry carries the node's prebuilt instrument handles. The
// zero value (all-nil handles) is a complete no-op, so uninstrumented
// nodes pay one nil check per event.
type nodeTelemetry struct {
	stabilizes    *telemetry.Counter
	repairs       *telemetry.Counter
	sampleRepairs *telemetry.Counter
	lookups       *telemetry.Counter
	lookupFails   *telemetry.Counter
	lookupHops    *telemetry.Histogram
}

// SetTelemetry attaches a registry. Instruments are shared by name
// across every node wired to the same registry, giving whole-ring
// totals. Wire before traffic starts; a nil registry detaches.
func (n *Node) SetTelemetry(reg *telemetry.Registry) {
	n.tel = nodeTelemetry{
		stabilizes:    reg.Counter("chord.stabilize.rounds"),
		repairs:       reg.Counter("chord.finger.repairs"),
		sampleRepairs: reg.Counter("chord.sample.repairs"),
		lookups:       reg.Counter("chord.lookups"),
		lookupFails:   reg.Counter("chord.lookup.failures"),
		lookupHops:    reg.Histogram("chord.lookup.hops", telemetry.HopBuckets()),
	}
}
