package chord

import (
	"fmt"
	"math/rand"
	"testing"

	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

// TestFingerTableMatchesFlatArray drives the run-length table and a
// flat reference array through the same randomized set/purge sequence
// and demands identical reads throughout.
func TestFingerTableMatchesFlatArray(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mkRef := func(k int) NodeRef {
		if k == 0 {
			return NodeRef{}
		}
		a := transport.Addr(fmt.Sprintf("n-%02d", k))
		return NodeRef{ID: ids.Hash([]byte(a)), Addr: a}
	}
	var flat [ids.Bits]NodeRef
	var ft fingerTable
	check := func(step int) {
		for i := 0; i < ids.Bits; i++ {
			if got := ft.get(i); !got.Equal(flat[i]) {
				t.Fatalf("step %d: finger %d = %v, want %v (runs %d)", step, i, got, flat[i], len(ft.ref))
			}
		}
		// Runs must be normalized: no adjacent equal values.
		for j := 1; j < len(ft.ref); j++ {
			if ft.ref[j].Equal(ft.ref[j-1]) {
				t.Fatalf("step %d: unmerged adjacent runs at %d", step, j)
			}
		}
	}
	for step := 0; step < 5000; step++ {
		if rng.Intn(10) == 0 {
			victim := mkRef(1 + rng.Intn(12))
			for i := range flat {
				if flat[i].Equal(victim) {
					flat[i] = NodeRef{}
				}
			}
			ft.purge(victim)
		} else {
			i := rng.Intn(ids.Bits)
			r := mkRef(rng.Intn(13))
			flat[i] = r
			ft.set(i, r)
		}
		if step%50 == 0 {
			check(step)
		}
	}
	check(5000)
}

// TestFingerTableDescendOrder pins descend's contract: the same value
// sequence as a top-down scan of the flat array that reports each run's
// first occurrence.
func TestFingerTableDescendOrder(t *testing.T) {
	var ft fingerTable
	a := NodeRef{ID: ids.HashString("a"), Addr: "a"}
	b := NodeRef{ID: ids.HashString("b"), Addr: "b"}
	ft.set(0, a)
	ft.set(1, b)
	ft.set(2, b)
	ft.set(100, a)
	var got []transport.Addr
	ft.descend(func(r NodeRef) bool {
		got = append(got, r.Addr)
		return true
	})
	want := []transport.Addr{"a", "b", "a"}
	if len(got) != len(want) {
		t.Fatalf("descend visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descend visited %v, want %v", got, want)
		}
	}
}

// TestWireStaticRingFingers verifies the monotone-scan bulk wiring
// against the definitional per-finger binary search.
func TestWireStaticRingFingers(t *testing.T) {
	for _, m := range []int{1, 2, 3, 17, 64} {
		net := transport.NewMemory(1)
		addrs := make([]transport.Addr, m)
		for i := range addrs {
			addrs[i] = transport.Addr(fmt.Sprintf("ring-%03d", i))
		}
		nodes, err := BuildStaticRing(net, addrs, Config{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		refs := make([]NodeRef, m)
		for i, n := range nodes {
			refs[i] = n.Self()
		}
		for _, n := range nodes {
			for f := 0; f < ids.Bits; f++ {
				want := refs[successorIndex(refs, n.ID().AddPow2(f))]
				if got := n.fingers.get(f); !got.Equal(want) {
					t.Fatalf("m=%d node %s finger %d: got %s want %s", m, n.Addr(), f, got.Addr, want.Addr)
				}
			}
		}
	}
}
