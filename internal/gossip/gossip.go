// Package gossip implements a Brahms-style membership and failure-
// detection layer under the PeerTrack overlay.
//
// Each node runs an Agent holding a bounded partial view of the
// network. Once per round the agent performs a push/pull view exchange
// with one partner drawn from its view: it pushes its own view plus a
// fresh self-entry (age 0) and pulls the partner's view back, merging
// both sides age-youngest-first. Entries age by one per round and are
// dropped past MaxAge, so departed nodes wash out of views even without
// explicit detection. On top of the view rides a min-wise sampler
// (SampleSlots independent hash minima over every address the agent
// hears about) providing two things the overlay needs: uniform peer
// samples that are independent of ring position, and a network-size
// estimate N̂ = (k−1)/Σx from the normalized slot minima — the
// estimator the paper's adaptive prefix length Lp wants (see
// internal/netsize).
//
// Failure detection is suspicion-based: every failed exchange or probe
// against an address increments its suspicion counter, every successful
// contact (outbound or inbound) resets it, and crossing
// SuspicionThreshold declares the address dead — it is purged from the
// view and sampler, quarantined against hearsay reintroduction, and
// reported through the OnDead callback so upper layers (successor-list
// repair in chord, gateway-cache eviction in core) can react. An
// inbound message from a dead address resurrects it.
//
// The package obeys the repo's determinism rules: no wall clock (rounds
// are driven externally, by the sim kernel or a test loop), no global
// rand (each agent owns a seeded *rand.Rand), and no writes through
// message payloads after they are handed to the transport.
package gossip

import (
	"errors"
	"math/rand"
	"sort"
	"sync"

	"peertrack/internal/overlay"
	"peertrack/internal/sim"
	"peertrack/internal/transport"
)

// Config tunes the membership protocol.
type Config struct {
	// ViewSize bounds the partial view (Brahms' ℓ). Default 16.
	ViewSize int
	// SampleSlots is the number of independent min-wise sampler slots
	// (more slots → tighter size estimate, ~k/√(k−2) relative error).
	// Default 32.
	SampleSlots int
	// MaxAge drops view entries not refreshed for this many rounds,
	// bounding how long hearsay about a departed node circulates.
	// Default 16.
	MaxAge uint32
	// SuspicionThreshold is the number of consecutive failed contacts
	// after which an address is declared dead. Default 2.
	SuspicionThreshold int
	// Seed drives the agent's private RNG (partner selection). Derive
	// per-node seeds with SeedFor so agents on one network stay
	// decorrelated but deterministic.
	Seed int64
}

func (c *Config) fill() {
	if c.ViewSize <= 0 {
		c.ViewSize = 16
	}
	if c.SampleSlots <= 0 {
		c.SampleSlots = 32
	}
	if c.MaxAge == 0 {
		c.MaxAge = 16
	}
	if c.SuspicionThreshold <= 0 {
		c.SuspicionThreshold = 2
	}
}

// ErrStopped is returned to callers exchanging with a stopped agent.
var ErrStopped = errors.New("gossip: agent stopped")

// Agent is one node's membership view, sampler, and failure detector.
type Agent struct {
	self overlay.NodeRef
	net  transport.Network
	cfg  Config

	mu      sync.Mutex
	rng     *rand.Rand
	view    []Entry // sorted youngest-first (Age, ID, Addr)
	smp     sampler
	susp    []suspicion      // sorted by Addr
	dead    []transport.Addr // sorted; quarantined addresses
	probeAt int              // round-robin sampler-slot probe cursor
	stopped bool
	onDead  func(overlay.NodeRef)

	tel agentTelemetry
}

// suspicion tracks consecutive failed contacts against one address.
type suspicion struct {
	addr  transport.Addr
	count int
}

// New creates an agent for self on net. The agent serves no traffic by
// itself: compose HandleRPC into the node's application handler and
// drive Round from the sim kernel (ScheduleRounds) or a test loop.
func New(net transport.Network, self overlay.NodeRef, cfg Config) *Agent {
	cfg.fill()
	a := &Agent{
		self: self,
		net:  net,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	a.smp.init(cfg.SampleSlots, uint64(cfg.Seed))
	a.smp.feed(self) // every node has observed itself
	return a
}

// SeedFor derives a per-node RNG seed from a base seed and the node's
// address, so all agents on one network are decorrelated yet fully
// determined by the base seed.
func SeedFor(base int64, addr transport.Addr) int64 {
	return int64(mix64(addrHash(addr) ^ uint64(base)))
}

// SetOnDead installs the dead-verdict callback. It runs outside the
// agent lock, once per address transitioning alive→dead. Install before
// traffic starts.
func (a *Agent) SetOnDead(fn func(overlay.NodeRef)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onDead = fn
}

// SeedView merges bootstrap references (typically ring neighbours) into
// the view as fresh entries and feeds them to the sampler.
func (a *Agent) SeedView(refs []overlay.NodeRef) {
	a.mu.Lock()
	defer a.mu.Unlock()
	entries := make([]Entry, 0, len(refs))
	for _, r := range refs {
		entries = append(entries, Entry{Ref: r})
	}
	a.mergeLocked(entries)
	for _, r := range refs {
		a.feedLocked(r)
	}
}

// Stop marks the agent stopped: Round becomes a no-op and inbound
// exchanges are refused. Used when the owning node crashes or leaves.
func (a *Agent) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stopped = true
}

// Self returns the agent's own reference.
func (a *Agent) Self() overlay.NodeRef { return a.self }

// Round performs one gossip round: age the view, push/pull with one
// partner, then liveness-probe one sampler slot (round-robin), feeding
// the failure detector on both paths.
func (a *Agent) Round() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.ageLocked()
	if len(a.view) == 0 {
		a.mu.Unlock()
		return
	}
	partner := a.view[a.rng.Intn(len(a.view))].Ref
	req := exchangeReq{From: a.self, Entries: a.wireEntriesLocked()}
	a.mu.Unlock()

	a.tel.rounds.Inc()
	var deadRefs []overlay.NodeRef
	resp, err := a.net.Call(a.self.Addr, partner.Addr, req)
	a.mu.Lock()
	if err != nil {
		a.tel.exchangeFails.Inc()
		if a.suspectLocked(partner.Addr) {
			deadRefs = append(deadRefs, partner)
		}
	} else {
		a.tel.exchanges.Inc()
		a.aliveLocked(partner.Addr)
		r := resp.(exchangeResp)
		a.mergeLocked(r.Entries)
		a.feedLocked(partner)
		for _, e := range r.Entries {
			if a.admissibleLocked(e) {
				a.feedLocked(e.Ref)
			}
		}
	}
	probe, ok := a.nextProbeLocked()
	a.mu.Unlock()

	if ok {
		a.tel.probes.Inc()
		if _, perr := a.net.Call(a.self.Addr, probe.Addr, probeReq{}); perr != nil {
			a.tel.probeFails.Inc()
			a.mu.Lock()
			if a.suspectLocked(probe.Addr) {
				deadRefs = append(deadRefs, probe)
			}
			a.mu.Unlock()
		} else {
			a.mu.Lock()
			a.aliveLocked(probe.Addr)
			a.mu.Unlock()
		}
	}

	a.mu.Lock()
	fn := a.onDead
	a.mu.Unlock()
	if fn != nil {
		for _, d := range deadRefs {
			fn(d)
		}
	}
}

// RoundLoop is a handle to a recurring kernel-driven round schedule.
type RoundLoop struct {
	stopped bool
	t       sim.Timer
}

// Stop cancels the loop; pending rounds will not fire.
func (l *RoundLoop) Stop() {
	if l == nil {
		return
	}
	l.stopped = true
	l.t.Stop()
}

// ScheduleRounds drives the agent from the sim kernel: one Round every
// interval of virtual time, starting one interval from now, until the
// loop or the agent is stopped.
func (a *Agent) ScheduleRounds(k *sim.Kernel, interval sim.Time) *RoundLoop {
	l := &RoundLoop{}
	var fire func()
	fire = func() {
		if l.stopped {
			return
		}
		a.mu.Lock()
		stopped := a.stopped
		a.mu.Unlock()
		if stopped {
			return
		}
		a.Round()
		l.t = k.Schedule(interval, fire)
	}
	l.t = k.Schedule(interval, fire)
	return l
}

// HandleRPC serves the exchange and probe messages; compose it into the
// node's application handler ahead of other layers. Returns
// handled=false for foreign messages.
func (a *Agent) HandleRPC(from transport.Addr, req any) (any, bool, error) {
	switch r := req.(type) {
	case exchangeReq:
		a.mu.Lock()
		if a.stopped {
			a.mu.Unlock()
			return nil, true, ErrStopped
		}
		// Pull half answers with the pre-merge view, then the push half
		// is merged — both sides end up with the union.
		resp := exchangeResp{Entries: a.wireEntriesLocked()}
		a.aliveLocked(r.From.Addr)
		a.mergeLocked(r.Entries)
		a.feedLocked(r.From)
		for _, e := range r.Entries {
			if a.admissibleLocked(e) {
				a.feedLocked(e.Ref)
			}
		}
		a.mu.Unlock()
		a.tel.exchangesServed.Inc()
		return resp, true, nil
	case probeReq:
		a.mu.Lock()
		stopped := a.stopped
		a.mu.Unlock()
		if stopped {
			return nil, true, ErrStopped
		}
		return probeResp{Self: a.self}, true, nil
	}
	return nil, false, nil
}

// View returns a copy of the current view, youngest-first.
func (a *Agent) View() []Entry {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Entry(nil), a.view...)
}

// Samples returns the agent's current peer samples — the union of view
// entries and sampler slot elements, deduplicated and sorted by address
// — for overlay repair (chord.RepairFromSamples).
func (a *Agent) Samples() []overlay.NodeRef {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]overlay.NodeRef, 0, len(a.view)+len(a.smp.slots))
	for _, e := range a.view {
		out = append(out, e.Ref)
	}
	for _, s := range a.smp.slots {
		if s.full && s.ref.Addr != a.self.Addr {
			out = append(out, s.ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	dedup := out[:0]
	for i, r := range out {
		if i > 0 && r.Addr == out[i-1].Addr {
			continue
		}
		dedup = append(dedup, r)
	}
	return dedup
}

// Estimate returns the min-wise network-size estimate N̂ = (k−1)/Σx
// over the k filled sampler slots (x = normalized slot minimum).
// Returns 0 until at least two slots are filled — callers should treat
// that as "not converged", matching netsize.Gossip.Estimate.
func (a *Agent) Estimate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.smp.estimate()
}

// Suspect reports one failed contact observed by an external layer —
// e.g. the overlay's own RPC failure against a successor — feeding the
// same suspicion state machine as the agent's exchanges and probes. It
// returns true when the report crossed the threshold and ref was
// declared dead; the OnDead callback fires before returning.
func (a *Agent) Suspect(ref overlay.NodeRef) bool {
	a.mu.Lock()
	if a.stopped || ref.IsZero() || ref.Addr == a.self.Addr {
		a.mu.Unlock()
		return false
	}
	died := a.suspectLocked(ref.Addr)
	fn := a.onDead
	a.mu.Unlock()
	if died && fn != nil {
		fn(ref)
	}
	return died
}

// IsDead reports whether the failure detector has declared addr dead
// (and it has not been resurrected by inbound contact since).
func (a *Agent) IsDead(addr transport.Addr) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.isDeadLocked(addr)
}

// ageLocked ages every entry one round and drops entries past MaxAge.
func (a *Agent) ageLocked() {
	kept := a.view[:0]
	for i := range a.view {
		a.view[i].Age++
		if a.view[i].Age <= a.cfg.MaxAge {
			kept = append(kept, a.view[i])
		}
	}
	a.view = kept
}

// wireEntriesLocked builds a fresh outbound entry slice: a self-entry
// at age 0 followed by a copy of the view. Fresh allocation per message
// is deliberate — the transport owns payloads once handed over
// (msgfreeze), so no scratch buffer may back them.
func (a *Agent) wireEntriesLocked() []Entry {
	out := make([]Entry, 0, len(a.view)+1)
	out = append(out, Entry{Ref: a.self})
	out = append(out, a.view...)
	return out
}

// admissibleLocked reports whether an incoming entry may enter the view
// or the sampler: not self, not zero, not over-age, not quarantined.
func (a *Agent) admissibleLocked(e Entry) bool {
	return !e.Ref.IsZero() && e.Ref.Addr != a.self.Addr &&
		e.Age <= a.cfg.MaxAge && !a.isDeadLocked(e.Ref.Addr)
}

// mergeLocked merges incoming entries into the view. The merge is
// slice-only and order-insensitive: concatenate, sort by (Addr, Age)
// and keep the youngest entry per address, then impose the total order
// (Age, ID, Addr) and truncate to ViewSize. Any permutation of the same
// entry multiset yields a byte-identical view.
func (a *Agent) mergeLocked(incoming []Entry) {
	merged := make([]Entry, 0, len(a.view)+len(incoming))
	merged = append(merged, a.view...)
	for _, e := range incoming {
		if a.admissibleLocked(e) {
			merged = append(merged, e)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Ref.Addr != merged[j].Ref.Addr {
			return merged[i].Ref.Addr < merged[j].Ref.Addr
		}
		return merged[i].Age < merged[j].Age
	})
	out := merged[:0]
	for _, e := range merged {
		if len(out) > 0 && e.Ref.Addr == out[len(out)-1].Ref.Addr {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Age != out[j].Age {
			return out[i].Age < out[j].Age
		}
		if c := out[i].Ref.ID.Cmp(out[j].Ref.ID); c != 0 {
			return c < 0
		}
		return out[i].Ref.Addr < out[j].Ref.Addr
	})
	if len(out) > a.cfg.ViewSize {
		out = out[:a.cfg.ViewSize]
	}
	a.view = out
}

// feedLocked offers one observed address to the min-wise sampler.
func (a *Agent) feedLocked(r overlay.NodeRef) {
	a.smp.feed(r)
}

// nextProbeLocked picks the next sampler slot to liveness-check,
// cycling round-robin so every retained minimum is eventually
// validated — this is what lets the estimator shed crashed nodes whose
// hashes would otherwise pin the slot minima forever.
func (a *Agent) nextProbeLocked() (overlay.NodeRef, bool) {
	k := len(a.smp.slots)
	for i := 0; i < k; i++ {
		s := &a.smp.slots[a.probeAt]
		a.probeAt = (a.probeAt + 1) % k
		if s.full && s.ref.Addr != a.self.Addr {
			return s.ref, true
		}
	}
	return overlay.NodeRef{}, false
}

// suspectLocked records one failed contact; on crossing the threshold
// the address is declared dead (purged from view and sampler,
// quarantined) and true is returned so the caller can fire OnDead.
func (a *Agent) suspectLocked(addr transport.Addr) bool {
	i := sort.Search(len(a.susp), func(i int) bool { return a.susp[i].addr >= addr })
	if i == len(a.susp) || a.susp[i].addr != addr {
		a.susp = append(a.susp, suspicion{})
		copy(a.susp[i+1:], a.susp[i:])
		a.susp[i] = suspicion{addr: addr}
	}
	a.susp[i].count++
	if a.susp[i].count < a.cfg.SuspicionThreshold {
		return false
	}
	a.susp = append(a.susp[:i], a.susp[i+1:]...)
	if a.isDeadLocked(addr) {
		return false
	}
	a.killLocked(addr)
	return true
}

// killLocked purges addr from the view and sampler and quarantines it
// against reintroduction by hearsay.
func (a *Agent) killLocked(addr transport.Addr) {
	kept := a.view[:0]
	for _, e := range a.view {
		if e.Ref.Addr != addr {
			kept = append(kept, e)
		}
	}
	a.view = kept
	a.smp.invalidate(addr)
	i := sort.Search(len(a.dead), func(i int) bool { return a.dead[i] >= addr })
	if i == len(a.dead) || a.dead[i] != addr {
		a.dead = append(a.dead, "")
		copy(a.dead[i+1:], a.dead[i:])
		a.dead[i] = addr
	}
	a.tel.deaths.Inc()
}

// aliveLocked records a successful contact: suspicion resets and a
// quarantined address is resurrected.
func (a *Agent) aliveLocked(addr transport.Addr) {
	if i := sort.Search(len(a.susp), func(i int) bool { return a.susp[i].addr >= addr }); i < len(a.susp) && a.susp[i].addr == addr {
		a.susp = append(a.susp[:i], a.susp[i+1:]...)
	}
	if i := sort.Search(len(a.dead), func(i int) bool { return a.dead[i] >= addr }); i < len(a.dead) && a.dead[i] == addr {
		a.dead = append(a.dead[:i], a.dead[i+1:]...)
		a.tel.resurrections.Inc()
	}
}

func (a *Agent) isDeadLocked(addr transport.Addr) bool {
	i := sort.Search(len(a.dead), func(i int) bool { return a.dead[i] >= addr })
	return i < len(a.dead) && a.dead[i] == addr
}
