package gossip

import "peertrack/internal/telemetry"

// agentTelemetry carries the agent's prebuilt instrument handles. The
// zero value (all-nil handles) is a complete no-op, matching the
// instrumentation pattern of chord and core.
type agentTelemetry struct {
	rounds          *telemetry.Counter
	exchanges       *telemetry.Counter
	exchangesServed *telemetry.Counter
	exchangeFails   *telemetry.Counter
	probes          *telemetry.Counter
	probeFails      *telemetry.Counter
	deaths          *telemetry.Counter
	resurrections   *telemetry.Counter
}

// SetTelemetry attaches a registry. Instruments are shared by name
// across every agent wired to the same registry, giving network-wide
// totals. Wire before traffic starts; a nil registry detaches.
func (a *Agent) SetTelemetry(reg *telemetry.Registry) {
	a.tel = agentTelemetry{
		rounds:          reg.Counter("gossip.rounds"),
		exchanges:       reg.Counter("gossip.exchanges"),
		exchangesServed: reg.Counter("gossip.exchanges.served"),
		exchangeFails:   reg.Counter("gossip.exchange.failures"),
		probes:          reg.Counter("gossip.probes"),
		probeFails:      reg.Counter("gossip.probe.failures"),
		deaths:          reg.Counter("gossip.deaths"),
		resurrections:   reg.Counter("gossip.resurrections"),
	}
}
