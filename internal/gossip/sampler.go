package gossip

import (
	"math"

	"peertrack/internal/overlay"
	"peertrack/internal/transport"
)

// sampler is a min-wise sampler: k slots, each with an independent
// seeded 64-bit hash; a slot retains the observed address minimizing
// its hash. Because the minimizer of a uniform hash over any observed
// multiset is a uniform sample of the distinct elements, the slots are
// k near-independent uniform node samples — regardless of how skewed
// the observation stream is (view entries arrive in proportion to
// gossip mixing, not uniformly).
//
// The same minima drive size estimation: with N distinct addresses, the
// normalized minimum x = (h+1)/2^64 of each slot is ≈ the minimum of N
// uniform (0,1] draws, so Σx over k slots is Gamma(k, 1/N)-distributed
// and N̂ = (k−1)/Σx is the standard unbiased order-statistics estimator
// (as in min-wise/KMV distinct-value sketches).
//
// Minima only ever decrease, so a crashed node would pin its slots
// forever; invalidate clears every slot held by a dead address and the
// slot refills from subsequent observations, which is how shrink
// schedules become visible to the estimator.
type sampler struct {
	slots []slot
	seeds []uint64
}

type slot struct {
	ref  overlay.NodeRef
	hash uint64
	full bool
}

// init sizes the sampler with k slots whose hash seeds are derived from
// base via splitmix64, the standard way to fan one seed into many
// independent streams.
func (s *sampler) init(k int, base uint64) {
	s.slots = make([]slot, k)
	s.seeds = make([]uint64, k)
	x := base
	for i := range s.seeds {
		x += 0x9e3779b97f4a7c15
		s.seeds[i] = mix64(x)
	}
}

// feed offers one observed address to every slot.
func (s *sampler) feed(r overlay.NodeRef) {
	if r.IsZero() {
		return
	}
	base := addrHash(r.Addr)
	for i := range s.slots {
		h := mix64(base ^ s.seeds[i])
		if !s.slots[i].full || h < s.slots[i].hash {
			s.slots[i] = slot{ref: r, hash: h, full: true}
		}
	}
}

// invalidate clears every slot retaining addr.
func (s *sampler) invalidate(addr transport.Addr) {
	for i := range s.slots {
		if s.slots[i].full && s.slots[i].ref.Addr == addr {
			s.slots[i] = slot{}
		}
	}
}

// estimate returns N̂ = (k−1)/Σx over the filled slots, or 0 while
// fewer than two slots are filled (the estimator is undefined at k<2).
func (s *sampler) estimate() float64 {
	filled := 0
	sum := 0.0
	for i := range s.slots {
		if s.slots[i].full {
			filled++
			sum += (float64(s.slots[i].hash) + 1) / math.Exp2(64)
		}
	}
	if filled < 2 || sum <= 0 {
		return 0
	}
	est := float64(filled-1) / sum
	if est < 1 {
		est = 1
	}
	return est
}

// addrHash is FNV-1a over the address bytes, allocation-free.
func addrHash(addr transport.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// spreads the FNV output uniformly over 64 bits, which the normalized-
// minimum estimator depends on.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
