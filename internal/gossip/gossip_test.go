package gossip

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"peertrack/internal/ids"
	"peertrack/internal/overlay"
	"peertrack/internal/transport"
)

func ref(name string) overlay.NodeRef {
	return overlay.NodeRef{ID: ids.HashString(name), Addr: transport.Addr(name)}
}

// refs returns n distinct references named peer-0000…peer-(n-1).
func refs(n int) []overlay.NodeRef {
	out := make([]overlay.NodeRef, n)
	for i := range out {
		out[i] = ref(fmt.Sprintf("peer-%04d", i))
	}
	return out
}

// testAgent builds a standalone agent on net (or an unserved one when
// net is nil) with small deterministic defaults.
func testAgent(net transport.Network, name string, cfg Config) *Agent {
	if cfg.Seed == 0 {
		cfg.Seed = SeedFor(1, transport.Addr(name))
	}
	return New(net, ref(name), cfg)
}

// cluster wires n agents onto one Memory transport, each serving its
// RPCs directly, views seeded with ring neighbours (i±1).
func cluster(t *testing.T, n int, cfg Config) (*transport.Memory, []*Agent) {
	t.Helper()
	mem := transport.NewMemory(1)
	agents := make([]*Agent, n)
	rs := refs(n)
	for i, r := range rs {
		a := New(mem, r, Config{
			ViewSize:           cfg.ViewSize,
			SampleSlots:        cfg.SampleSlots,
			MaxAge:             cfg.MaxAge,
			SuspicionThreshold: cfg.SuspicionThreshold,
			Seed:               SeedFor(1, r.Addr),
		})
		agents[i] = a
		if err := mem.Register(r.Addr, func(from transport.Addr, req any) (any, error) {
			resp, handled, err := a.HandleRPC(from, req)
			if !handled {
				return nil, fmt.Errorf("unhandled %T", req)
			}
			return resp, err
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range agents {
		a.SeedView([]overlay.NodeRef{rs[(i+1)%n], rs[(i+n-1)%n]})
	}
	return mem, agents
}

func rounds(agents []*Agent, k int) {
	for r := 0; r < k; r++ {
		for _, a := range agents {
			a.Round()
		}
	}
}

// TestMergeProperties is the seeded property test over the view merge:
// for many random entry multisets, the view never exceeds its bound,
// never contains a self or over-age entry, and keeps the youngest age
// per address.
func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := refs(64)
	for trial := 0; trial < 200; trial++ {
		cfg := Config{ViewSize: 1 + rng.Intn(12), MaxAge: uint32(1 + rng.Intn(20))}
		a := testAgent(nil, "peer-0000", cfg)
		n := rng.Intn(40)
		entries := make([]Entry, n)
		minAge := map[transport.Addr]uint32{}
		for i := range entries {
			r := pool[rng.Intn(len(pool))]
			age := uint32(rng.Intn(int(cfg.MaxAge) + 4)) // some over-age
			entries[i] = Entry{Ref: r, Age: age}
			if r.Addr == a.Self().Addr || age > cfg.MaxAge {
				continue
			}
			if prev, ok := minAge[r.Addr]; !ok || age < prev {
				minAge[r.Addr] = age
			}
		}
		a.mu.Lock()
		a.mergeLocked(entries)
		view := append([]Entry(nil), a.view...)
		a.mu.Unlock()

		if len(view) > cfg.ViewSize {
			t.Fatalf("trial %d: view %d exceeds bound %d", trial, len(view), cfg.ViewSize)
		}
		for _, e := range view {
			if e.Ref.Addr == a.Self().Addr {
				t.Fatalf("trial %d: self entry in view", trial)
			}
			if e.Age > cfg.MaxAge {
				t.Fatalf("trial %d: over-age entry %d > %d", trial, e.Age, cfg.MaxAge)
			}
			if want, ok := minAge[e.Ref.Addr]; !ok {
				t.Fatalf("trial %d: view entry %s never offered admissibly", trial, e.Ref.Addr)
			} else if e.Age != want {
				t.Fatalf("trial %d: kept age %d for %s, youngest offered was %d", trial, e.Age, e.Ref.Addr, want)
			}
		}
	}
}

// TestMergeOrderInsensitive pins the merge's permutation invariance:
// merging any permutation of the same entry multiset — in one batch or
// many — yields byte-identical views.
func TestMergeOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := refs(48)
	for trial := 0; trial < 100; trial++ {
		cfg := Config{ViewSize: 1 + rng.Intn(10), MaxAge: 8, Seed: 99}
		entries := make([]Entry, rng.Intn(30))
		for i := range entries {
			entries[i] = Entry{Ref: pool[rng.Intn(len(pool))], Age: uint32(rng.Intn(10))}
		}
		base := testAgent(nil, "peer-0000", cfg)
		base.mu.Lock()
		base.mergeLocked(entries)
		want := append([]Entry(nil), base.view...)
		base.mu.Unlock()

		perm := testAgent(nil, "peer-0000", cfg)
		shuffled := append([]Entry(nil), entries...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Split the permutation into random batches: merge must also be
		// insensitive to batching as long as ages keep duplicates
		// resolvable to the same winner.
		perm.mu.Lock()
		for len(shuffled) > 0 {
			k := 1 + rng.Intn(len(shuffled))
			perm.mergeLocked(shuffled[:k])
			shuffled = shuffled[k:]
		}
		got := append([]Entry(nil), perm.view...)
		perm.mu.Unlock()

		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: merge order-sensitive:\n one-shot: %v\n batched:  %v", trial, want, got)
		}
	}
}

// TestExchangeConverges runs a small cluster and checks full membership
// knowledge spreads: every agent's sample set reaches every live peer.
func TestExchangeConverges(t *testing.T) {
	const n = 12
	_, agents := cluster(t, n, Config{ViewSize: n, SampleSlots: 16})
	rounds(agents, 10)
	for i, a := range agents {
		s := a.Samples()
		if len(s) != n-1 {
			t.Errorf("agent %d knows %d peers, want %d", i, len(s), n-1)
		}
		for _, r := range s {
			if r.Addr == a.Self().Addr {
				t.Errorf("agent %d samples itself", i)
			}
		}
	}
}

// TestFailureDetector pins the suspicion state machine end to end:
// threshold crossing declares dead exactly once (with the OnDead
// callback), quarantine blocks hearsay readmission, and inbound contact
// resurrects.
func TestFailureDetector(t *testing.T) {
	mem, agents := cluster(t, 4, Config{SuspicionThreshold: 2, ViewSize: 8})
	rounds(agents, 6)

	victim := agents[3]
	var deaths []overlay.NodeRef
	agents[0].SetOnDead(func(r overlay.NodeRef) { deaths = append(deaths, r) })
	mem.Kill(victim.Self().Addr)

	if agents[0].Suspect(victim.Self()) {
		t.Fatal("first suspicion already crossed threshold 2")
	}
	if !agents[0].Suspect(victim.Self()) {
		t.Fatal("second suspicion did not cross threshold")
	}
	if !agents[0].IsDead(victim.Self().Addr) {
		t.Fatal("victim not marked dead")
	}
	if len(deaths) != 1 || !deaths[0].Equal(victim.Self()) {
		t.Fatalf("OnDead fired %v, want exactly the victim once", deaths)
	}
	if agents[0].Suspect(victim.Self()) {
		t.Fatal("re-suspecting a dead address re-declared death")
	}

	// Quarantine: hearsay from a live peer must not readmit the victim.
	a := agents[0]
	a.mu.Lock()
	a.mergeLocked([]Entry{{Ref: victim.Self(), Age: 0}})
	inView := false
	for _, e := range a.view {
		if e.Ref.Addr == victim.Self().Addr {
			inView = true
		}
	}
	a.mu.Unlock()
	if inView {
		t.Fatal("quarantined address readmitted by hearsay")
	}
	for _, s := range a.Samples() {
		if s.Addr == victim.Self().Addr {
			t.Fatal("dead address still in samples")
		}
	}

	// Resurrection: direct inbound contact from the revived victim.
	mem.Revive(victim.Self().Addr)
	if _, handled, err := a.HandleRPC(victim.Self().Addr, exchangeReq{From: victim.Self()}); !handled || err != nil {
		t.Fatalf("exchange from revived victim: handled=%v err=%v", handled, err)
	}
	if a.IsDead(victim.Self().Addr) {
		t.Fatal("inbound contact did not resurrect")
	}
}

// TestRoundSuspectsDeadPartner checks the organic path: killing a node
// and running rounds eventually gets it declared dead by its peers.
func TestRoundSuspectsDeadPartner(t *testing.T) {
	mem, agents := cluster(t, 6, Config{ViewSize: 8, SampleSlots: 8, SuspicionThreshold: 2})
	rounds(agents, 8)
	victim := agents[5].Self()
	mem.Kill(victim.Addr)
	agents[5].Stop()
	rounds(agents[:5], 40)
	for i, a := range agents[:5] {
		if !a.IsDead(victim.Addr) {
			t.Errorf("agent %d never declared the crashed node dead", i)
		}
	}
}

// TestStoppedAgent pins Stop semantics: rounds no-op and inbound
// exchanges are refused with ErrStopped.
func TestStoppedAgent(t *testing.T) {
	_, agents := cluster(t, 3, Config{})
	a := agents[0]
	a.Stop()
	before := a.View()
	a.Round()
	if !reflect.DeepEqual(before, a.View()) {
		t.Error("Round mutated a stopped agent's view")
	}
	if _, handled, err := a.HandleRPC(agents[1].Self().Addr, exchangeReq{From: agents[1].Self()}); !handled || err != ErrStopped {
		t.Errorf("exchange against stopped agent: handled=%v err=%v, want ErrStopped", handled, err)
	}
}

// TestDeterministicRounds pins the package's determinism contract: two
// identically seeded clusters evolve byte-identical state.
func TestDeterministicRounds(t *testing.T) {
	run := func() ([][]Entry, []float64) {
		_, agents := cluster(t, 8, Config{ViewSize: 6, SampleSlots: 16})
		rounds(agents, 12)
		views := make([][]Entry, len(agents))
		ests := make([]float64, len(agents))
		for i, a := range agents {
			views[i] = a.View()
			ests[i] = a.Estimate()
		}
		return views, ests
	}
	v1, e1 := run()
	v2, e2 := run()
	if !reflect.DeepEqual(v1, v2) {
		t.Error("same seeds, different views")
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Error("same seeds, different estimates")
	}
}
