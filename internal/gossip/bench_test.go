package gossip

import (
	"fmt"
	"testing"

	"peertrack/internal/overlay"
	"peertrack/internal/transport"
)

// Alloc-pinning benchmarks for the per-round view-exchange path. A
// round cannot be allocation-free — msgfreeze requires a fresh entry
// slice per wire message — but its allocation count must stay flat in
// the view size, not grow with network size or round count, or gossip
// would dominate GC load at Scale.XL node counts.

// benchCluster wires n served agents with converged views.
func benchCluster(b testing.TB, n int) []*Agent {
	b.Helper()
	mem := transport.NewMemory(1)
	agents := make([]*Agent, n)
	rs := make([]overlay.NodeRef, n)
	for i := range rs {
		rs[i] = ref(fmt.Sprintf("peer-%04d", i))
	}
	for i, r := range rs {
		a := New(mem, r, Config{Seed: SeedFor(1, r.Addr)})
		agents[i] = a
		if err := mem.Register(r.Addr, func(from transport.Addr, req any) (any, error) {
			resp, handled, err := a.HandleRPC(from, req)
			if !handled {
				return nil, fmt.Errorf("unhandled %T", req)
			}
			return resp, err
		}); err != nil {
			b.Fatal(err)
		}
	}
	for i, a := range agents {
		a.SeedView([]overlay.NodeRef{rs[(i+1)%n], rs[(i+n-1)%n]})
	}
	for r := 0; r < 10; r++ {
		for _, a := range agents {
			a.Round()
		}
	}
	return agents
}

func BenchmarkRound(b *testing.B) {
	agents := benchCluster(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agents[i%len(agents)].Round()
	}
}

func BenchmarkHandleExchange(b *testing.B) {
	agents := benchCluster(b, 16)
	serving, caller := agents[0], agents[1]
	req := exchangeReq{From: caller.Self(), Entries: caller.View()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, handled, err := serving.HandleRPC(caller.Self().Addr, req); !handled || err != nil {
			b.Fatalf("handled=%v err=%v", handled, err)
		}
	}
}

func BenchmarkSamples(b *testing.B) {
	agents := benchCluster(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(agents[0].Samples()) == 0 {
			b.Fatal("no samples")
		}
	}
}

// TestRoundAllocCeiling pins the steady-state allocation budget of a
// full round (exchange out, merge in, sampler feed, one probe) on a
// converged 16-node network. The ceiling has headroom over the measured
// cost; it exists to catch the path regressing to per-entry boxing or
// per-round map rebuilds, not to pin an exact count.
func TestRoundAllocCeiling(t *testing.T) {
	agents := benchCluster(t, 16)
	i := 0
	const ceiling = 64 // measured ~19/op; 3× headroom
	if avg := testing.AllocsPerRun(200, func() {
		agents[i%len(agents)].Round()
		i++
	}); avg > ceiling {
		t.Errorf("gossip round allocates %.1f/op, ceiling %d", avg, ceiling)
	}
}
