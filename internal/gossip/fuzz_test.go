package gossip

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"peertrack/internal/transport"
)

// The fuzz targets re-state the merge and sampler properties over
// adversarial byte-derived inputs. `go test` runs the seed corpus only,
// so the suite stays deterministic; `go test -fuzz` explores further.

// decodeEntries derives an entry multiset from raw bytes: each byte
// pair is (peer index, age).
func decodeEntries(data []byte) []Entry {
	entries := make([]Entry, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		entries = append(entries, Entry{
			Ref: ref(fmt.Sprintf("peer-%04d", int(data[i])%40)),
			Age: uint32(data[i+1] % 24),
		})
	}
	return entries
}

func FuzzViewMerge(f *testing.F) {
	f.Add([]byte{0, 0, 1, 3, 2, 9}, uint8(4), int64(1))
	f.Add([]byte{7, 22, 7, 1, 7, 1, 0, 0}, uint8(1), int64(9))
	f.Add([]byte{}, uint8(8), int64(3))
	f.Fuzz(func(t *testing.T, data []byte, viewSize uint8, shuffleSeed int64) {
		cfg := Config{ViewSize: 1 + int(viewSize)%16, MaxAge: 16}
		entries := decodeEntries(data)

		a := testAgentF("peer-0000", cfg)
		a.mu.Lock()
		a.mergeLocked(entries)
		want := append([]Entry(nil), a.view...)
		a.mu.Unlock()

		if len(want) > cfg.ViewSize {
			t.Fatalf("view %d exceeds bound %d", len(want), cfg.ViewSize)
		}
		seen := map[transport.Addr]bool{}
		for _, e := range want {
			if e.Ref.Addr == a.Self().Addr {
				t.Fatal("self entry in view")
			}
			if e.Age > cfg.MaxAge {
				t.Fatalf("over-age entry %d", e.Age)
			}
			if seen[e.Ref.Addr] {
				t.Fatalf("duplicate address %s", e.Ref.Addr)
			}
			seen[e.Ref.Addr] = true
		}

		// Permutation invariance under the shuffle seed.
		b := testAgentF("peer-0000", cfg)
		shuffled := append([]Entry(nil), entries...)
		rand.New(rand.NewSource(shuffleSeed)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b.mu.Lock()
		b.mergeLocked(shuffled)
		got := append([]Entry(nil), b.view...)
		b.mu.Unlock()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("merge order-sensitive:\n %v\n %v", want, got)
		}
	})
}

func FuzzSampler(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(8))
	f.Add([]byte{9, 9, 9}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, slots uint8) {
		k := 2 + int(slots)%32
		var s sampler
		s.init(k, 77)
		fed := map[transport.Addr]bool{}
		for _, b := range data {
			r := ref(fmt.Sprintf("peer-%04d", int(b)%64))
			s.feed(r)
			fed[r.Addr] = true
		}
		// Every full slot holds a fed address with its correct minimum.
		for i, sl := range s.slots {
			if !sl.full {
				continue
			}
			if !fed[sl.ref.Addr] {
				t.Fatalf("slot %d holds never-fed address %s", i, sl.ref.Addr)
			}
			if got := mix64(addrHash(sl.ref.Addr) ^ s.seeds[i]); got != sl.hash {
				t.Fatalf("slot %d hash mismatch", i)
			}
			for addr := range fed {
				if h := mix64(addrHash(addr) ^ s.seeds[i]); h < sl.hash {
					t.Fatalf("slot %d kept %s but %s hashes lower", i, sl.ref.Addr, addr)
				}
			}
		}
		// Feeding is idempotent and order-insensitive: re-feeding
		// everything changes nothing.
		before := append([]slot(nil), s.slots...)
		for addr := range fed {
			s.feed(ref(string(addr)))
		}
		if !reflect.DeepEqual(before, s.slots) {
			t.Fatal("re-feeding mutated slots")
		}
		// Invalidation fully evicts an address.
		for addr := range fed {
			s.invalidate(addr)
			for i, sl := range s.slots {
				if sl.full && sl.ref.Addr == addr {
					t.Fatalf("slot %d still holds invalidated %s", i, addr)
				}
			}
			break
		}
	})
}

// testAgentF mirrors testAgent for fuzz targets (no *testing.T plumbing
// through the fuzz closure).
func testAgentF(name string, cfg Config) *Agent {
	if cfg.Seed == 0 {
		cfg.Seed = SeedFor(1, transport.Addr(name))
	}
	return New(nil, ref(name), cfg)
}
