package gossip

import (
	"peertrack/internal/overlay"
	"peertrack/internal/transport"
)

// Entry is one membership-view slot: a node reference plus its age in
// gossip rounds. Age 0 means "the node itself vouched for this entry
// this round"; every round of silence ages it by one, and merges keep
// the youngest report per address, so fresh liveness information always
// displaces stale hearsay.
type Entry struct {
	Ref overlay.NodeRef
	Age uint32
}

// exchangeReq is the push half of a push/pull view exchange: the
// sender's self-entry (age 0) plus a copy of its current view.
type exchangeReq struct {
	From    overlay.NodeRef
	Entries []Entry
}

// exchangeResp is the pull half: the receiver's pre-merge view plus its
// self-entry, so both sides learn the union.
type exchangeResp struct {
	Entries []Entry
}

// probeReq validates a sampler element or view entry: any answer at all
// proves liveness.
type probeReq struct{}

// probeResp carries the prober target's self reference.
type probeResp struct {
	Self overlay.NodeRef
}

// entryWireSize approximates one Entry on the wire: a 20-byte
// identifier, the address, and the age word.
func entryWireSize(e Entry) int {
	return 20 + len(e.Ref.Addr) + 4
}

// WireSize implements transport.WireSizer for byte accounting.
func (r exchangeReq) WireSize() int {
	n := 20 + len(r.From.Addr)
	for _, e := range r.Entries {
		n += entryWireSize(e)
	}
	return n
}

// WireSize implements transport.WireSizer.
func (r exchangeResp) WireSize() int {
	n := 0
	for _, e := range r.Entries {
		n += entryWireSize(e)
	}
	return n
}

// WireSize implements transport.WireSizer.
func (r probeResp) WireSize() int { return 20 + len(r.Self.Addr) }

func init() {
	transport.Register(exchangeReq{})
	transport.Register(exchangeResp{})
	transport.Register(probeReq{})
	transport.Register(probeResp{})
}
