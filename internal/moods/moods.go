// Package moods implements MOODS, the paper's Model for mOving Objects
// in Discrete Space (Section II-B).
//
// Space is a finite, dynamic set of nodes N = {n1..nm} (the places where
// receptors are deployed); time is continuous; objects move between
// nodes and are observed only at them. The model defines two functions:
//
//	L(o, t):  O × T     → N   — where object o was/is at time t
//	TR(o, t1, t2): O × T × T → P — the path of o during [t1, t2]
//
// The package defines the domain types shared by every layer (object
// ids, observations, paths) and HistoryStore, a complete in-memory
// reference implementation of L and TR. HistoryStore doubles as the
// ground-truth oracle that tests compare the distributed P2P
// implementation against.
package moods

import (
	"sort"
	"sync"
	"time"

	"peertrack/internal/ids"
)

// ObjectID is an object's raw identifier — in EPC deployments the
// pure-identity URN, e.g. "urn:epc:id:sgtin:0614141.812345.6789". The
// identifier-space position of an object is SHA1(raw id).
type ObjectID string

// Hash maps the raw id into the 160-bit identifier space.
func (o ObjectID) Hash() ids.ID { return ids.HashString(string(o)) }

// NodeName names a node of the discrete space N — a warehouse, a
// distribution centre, a retail store.
type NodeName string

// Nowhere is the nil result of L: the object is not (yet) in the system.
const Nowhere = NodeName("")

// Observation is one element of the information flow: a receptor at
// Node captured Object at time At. Receptor identifies which reader saw
// it (e.g. "dock-door-3"); it does not affect the model but is carried
// for applications.
type Observation struct {
	Object   ObjectID
	Node     NodeName
	Receptor string
	At       time.Duration
}

// Visit is one stop on an object's trajectory.
type Visit struct {
	Node    NodeName
	Arrived time.Duration
}

// Path is the value domain P of TR: the sorted (by time) list of nodes
// an object visited. It may be empty.
type Path []Visit

// Nodes projects the path onto node names, in visit order.
func (p Path) Nodes() []NodeName {
	out := make([]NodeName, len(p))
	for i, v := range p {
		out[i] = v.Node
	}
	return out
}

// Equal reports whether two paths visit the same nodes at the same
// times.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Locator answers the L function.
type Locator interface {
	// Locate returns the node where object o was at time t, or Nowhere
	// if o had not been observed by t.
	Locate(o ObjectID, t time.Duration) (NodeName, error)
}

// Tracer answers the TR function.
type Tracer interface {
	// Trace returns the path of o during [t1, t2]: every node where o
	// was observed inside the window, in time order. If the object was
	// already inside the system at t1, the node it occupied at t1 opens
	// the path.
	Trace(o ObjectID, t1, t2 time.Duration) (Path, error)
}

// HistoryStore is the reference implementation of L and TR: it records
// every observation and answers queries exactly. It is the semantic
// specification the distributed implementation must match, and the
// centralized baseline builds on it.
type HistoryStore struct {
	mu   sync.RWMutex
	hist map[ObjectID][]Observation // per object, sorted by At
	n    int                        // total observations
}

// NewHistoryStore creates an empty store.
func NewHistoryStore() *HistoryStore {
	return &HistoryStore{hist: make(map[ObjectID][]Observation)}
}

// Record adds an observation. Observations may arrive out of order;
// the per-object history stays time-sorted.
func (h *HistoryStore) Record(obs Observation) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.hist[obs.Object]
	i := sort.Search(len(s), func(i int) bool { return s[i].At > obs.At })
	s = append(s, Observation{})
	copy(s[i+1:], s[i:])
	s[i] = obs
	h.hist[obs.Object] = s
	h.n++
}

// Len returns the total number of recorded observations.
func (h *HistoryStore) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.n
}

// Objects returns the number of distinct objects seen.
func (h *HistoryStore) Objects() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.hist)
}

// ObjectIDs returns every distinct object seen, sorted, so callers that
// sweep the whole population (the invariant checker) iterate
// deterministically.
func (h *HistoryStore) ObjectIDs() []ObjectID {
	h.mu.RLock()
	out := make([]ObjectID, 0, len(h.hist))
	for o := range h.hist {
		out = append(out, o)
	}
	h.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Locate implements Locator: the node of the latest observation at or
// before t.
func (h *HistoryStore) Locate(o ObjectID, t time.Duration) (NodeName, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.hist[o]
	i := sort.Search(len(s), func(i int) bool { return s[i].At > t })
	if i == 0 {
		return Nowhere, nil
	}
	return s[i-1].Node, nil
}

// Trace implements Tracer.
func (h *HistoryStore) Trace(o ObjectID, t1, t2 time.Duration) (Path, error) {
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.hist[o]
	var path Path
	// The node occupied at t1 (arrival strictly before t1) opens the
	// path.
	i := sort.Search(len(s), func(i int) bool { return s[i].At >= t1 })
	if i > 0 {
		path = append(path, Visit{Node: s[i-1].Node, Arrived: s[i-1].At})
	}
	for ; i < len(s) && s[i].At <= t2; i++ {
		path = append(path, Visit{Node: s[i].Node, Arrived: s[i].At})
	}
	return path, nil
}

// FullTrace returns the whole lifetime trajectory of o.
func (h *HistoryStore) FullTrace(o ObjectID) Path {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s := h.hist[o]
	path := make(Path, len(s))
	for i, obs := range s {
		path[i] = Visit{Node: obs.Node, Arrived: obs.At}
	}
	return path
}

// History returns a copy of the raw observations for o, time-sorted.
func (h *HistoryStore) History(o ObjectID) []Observation {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]Observation(nil), h.hist[o]...)
}
