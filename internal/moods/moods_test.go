package moods

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func obs(o string, n string, at time.Duration) Observation {
	return Observation{Object: ObjectID(o), Node: NodeName(n), At: at}
}

func TestLocateBeforeFirstObservation(t *testing.T) {
	h := NewHistoryStore()
	h.Record(obs("o1", "n1", 10*time.Second))
	loc, err := h.Locate("o1", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loc != Nowhere {
		t.Fatalf("L before first observation = %q, want Nowhere", loc)
	}
}

func TestLocateUnknownObject(t *testing.T) {
	h := NewHistoryStore()
	loc, err := h.Locate("ghost", time.Hour)
	if err != nil || loc != Nowhere {
		t.Fatalf("L(ghost) = %q, %v", loc, err)
	}
}

func TestLocateAtAndBetweenObservations(t *testing.T) {
	h := NewHistoryStore()
	h.Record(obs("o1", "n1", 10*time.Second))
	h.Record(obs("o1", "n2", 20*time.Second))
	h.Record(obs("o1", "n3", 30*time.Second))
	cases := []struct {
		t    time.Duration
		want NodeName
	}{
		{10 * time.Second, "n1"}, // exactly at capture
		{15 * time.Second, "n1"}, // between captures: still at previous
		{20 * time.Second, "n2"},
		{29 * time.Second, "n2"},
		{30 * time.Second, "n3"},
		{time.Hour, "n3"}, // far future: last known
	}
	for _, c := range cases {
		got, err := h.Locate("o1", c.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("L(o1, %v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestOutOfOrderRecording(t *testing.T) {
	h := NewHistoryStore()
	h.Record(obs("o1", "n3", 30*time.Second))
	h.Record(obs("o1", "n1", 10*time.Second))
	h.Record(obs("o1", "n2", 20*time.Second))
	got, _ := h.Locate("o1", 25*time.Second)
	if got != "n2" {
		t.Fatalf("L = %q after out-of-order inserts", got)
	}
	full := h.FullTrace("o1")
	want := []NodeName{"n1", "n2", "n3"}
	for i, n := range full.Nodes() {
		if n != want[i] {
			t.Fatalf("trace order = %v", full.Nodes())
		}
	}
}

func TestTraceWindow(t *testing.T) {
	h := NewHistoryStore()
	for i, n := range []string{"a", "b", "c", "d", "e"} {
		h.Record(obs("o1", n, time.Duration(i+1)*10*time.Second))
	}
	// Window [25s, 45s]: at t1 the object sits at b (arrived 20s); then
	// c (30s) and d (40s) fall inside.
	p, err := h.Trace("o1", 25*time.Second, 45*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeName{"b", "c", "d"}
	got := p.Nodes()
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace = %v, want %v", got, want)
		}
	}
}

func TestTraceSwappedBounds(t *testing.T) {
	h := NewHistoryStore()
	h.Record(obs("o1", "a", 10*time.Second))
	h.Record(obs("o1", "b", 20*time.Second))
	p1, _ := h.Trace("o1", 5*time.Second, 25*time.Second)
	p2, _ := h.Trace("o1", 25*time.Second, 5*time.Second)
	if !p1.Equal(p2) {
		t.Fatal("swapped bounds changed the trace")
	}
}

func TestTraceEmptyWindow(t *testing.T) {
	h := NewHistoryStore()
	h.Record(obs("o1", "a", 100*time.Second))
	p, _ := h.Trace("o1", 0, 50*time.Second)
	if len(p) != 0 {
		t.Fatalf("trace before any observation = %v", p)
	}
}

func TestTraceLifetime(t *testing.T) {
	h := NewHistoryStore()
	nodes := []string{"a", "b", "c"}
	for i, n := range nodes {
		h.Record(obs("o1", n, time.Duration(i)*time.Minute))
	}
	p, _ := h.Trace("o1", 0, time.Hour)
	if len(p) != 3 {
		t.Fatalf("lifetime trace = %v", p.Nodes())
	}
}

func TestCountsAndMultipleObjects(t *testing.T) {
	h := NewHistoryStore()
	for i := 0; i < 10; i++ {
		h.Record(obs(fmt.Sprintf("o%d", i%3), "n", time.Duration(i)*time.Second))
	}
	if h.Len() != 10 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Objects() != 3 {
		t.Errorf("Objects = %d", h.Objects())
	}
}

func TestObjectIDHashStable(t *testing.T) {
	a := ObjectID("urn:epc:id:sgtin:0614141.812345.1").Hash()
	b := ObjectID("urn:epc:id:sgtin:0614141.812345.1").Hash()
	if a != b {
		t.Fatal("hash unstable")
	}
}

func TestHistoryReturnsCopy(t *testing.T) {
	h := NewHistoryStore()
	h.Record(obs("o1", "a", time.Second))
	hist := h.History("o1")
	hist[0].Node = "mutated"
	if got, _ := h.Locate("o1", time.Minute); got != "a" {
		t.Fatal("History exposed internal state")
	}
}

// Property: L(o, t) equals the node of the last observation at or
// before t under random insertion orders.
func TestQuickLocateMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		h := NewHistoryStore()
		var all []Observation
		for i := 0; i < 30; i++ {
			o := Observation{
				Object: "obj",
				Node:   NodeName(fmt.Sprintf("n%d", r.Intn(10))),
				At:     time.Duration(r.Intn(1000)) * time.Millisecond,
			}
			all = append(all, o)
			h.Record(o)
		}
		for q := 0; q < 20; q++ {
			at := time.Duration(r.Intn(1200)) * time.Millisecond
			// Brute force: latest observation with At <= at; on equal
			// timestamps the store keeps insertion order stable, so take
			// the last inserted among the max-At group.
			var best *Observation
			for i := range all {
				o := &all[i]
				if o.At <= at && (best == nil || o.At >= best.At) {
					best = o
				}
			}
			want := Nowhere
			if best != nil {
				want = best.Node
			}
			got, _ := h.Locate("obj", at)
			if got != want {
				t.Fatalf("trial %d: L(obj, %v) = %q, want %q", trial, at, got, want)
			}
		}
	}
}
