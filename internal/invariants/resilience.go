package invariants

import (
	"fmt"

	"peertrack/internal/transport"
)

// CheckResilience verifies the retry/breaker accounting of a
// transport.Resilient wrapper against the inner transport it drives.
// It holds exactly when the wrapper is the inner transport's only
// caller (the live trackd stack, the chaos resilience schedules, and
// the transport-level tests):
//
//   - the wrapper's own counters conserve (ResilienceSnapshot.Conserves:
//     every call succeeded or failed, attempts decompose into admitted
//     first tries plus retries),
//   - the inner transport's counters conserve (CheckStats),
//   - Attempts == inner Calls: every retry is billed as its own inner
//     call with its own drop/blocked accounting,
//   - inner Drops + Blocked == Retries + Failures − Rejected: each
//     transport-failed attempt is exactly one inner drop or block — a
//     retried-then-recovered call contributes its failed attempts as
//     retries, a call that fails outright contributes retries plus one
//     final failure, and a breaker-rejected call never reaches the wire.
//     Retried calls are therefore never double-counted as drops, and
//     drops are never silently swallowed by the retry loop.
//
// Handler-level failures (RemoteError) are deliberately excluded: the
// wrapper counts them as answered, the inner transport as completed
// calls with a failure flag, and neither side retries them.
func CheckResilience(res transport.ResilienceSnapshot, inner transport.Snapshot) []Violation {
	var out []Violation
	if !res.Conserves() {
		out = append(out, Violation{
			Invariant: "resilience-conservation",
			Detail: fmt.Sprintf("calls=%d attempts=%d retries=%d rejected=%d successes=%d failures=%d",
				res.Calls, res.Attempts, res.Retries, res.Rejected, res.Successes, res.Failures),
		})
	}
	out = append(out, CheckStats(inner)...)
	if inner.Calls != res.Attempts {
		out = append(out, Violation{
			Invariant: "resilience-attempt-accounting",
			Detail: fmt.Sprintf("inner calls=%d != resilient attempts=%d (wrapper must be the transport's sole caller)",
				inner.Calls, res.Attempts),
		})
	}
	wantFaults := res.Retries + res.Failures - res.Rejected
	if res.Failures < res.Rejected {
		wantFaults = 0 // already reported by resilience-conservation
	}
	if got := inner.Drops + inner.Blocked; got != wantFaults {
		out = append(out, Violation{
			Invariant: "resilience-fault-accounting",
			Detail: fmt.Sprintf("inner drops+blocked=%d != retries+failures-rejected=%d (retried calls double- or under-counted as drops)",
				got, wantFaults),
		})
	}
	return out
}
