package invariants

import (
	"fmt"
	"sort"

	"peertrack/internal/core"
	"peertrack/internal/moods"
	"peertrack/internal/transport"
)

// CheckReplicaAgreement verifies the k-successor replication contract
// at a quiesced checkpoint: every peer's index buckets and IOP
// repository are mirrored, byte-for-byte, on its k−1 ring successors,
// and no live mirror holds a copy that disagrees with its primary. The
// network must have completed a repair round (Network.SyncReplicas)
// since the last membership or index change; mid-window the mirrors
// may legitimately trail the primary by in-flight deltas.
//
// Entry agreement ignores the Indexed timestamp: it is local FIFO
// bookkeeping of the gateway, not tracked data, and a promoted bucket
// legitimately re-stamps it.
//
// Replicas recorded against owners that are no longer live peers are
// skipped: they are garbage awaiting the stale-drop pass (or pinned by
// a gossip death verdict so failover can still read them), and the
// ring-successor read path never consults copies outside the live
// owner's mirror set.
func CheckReplicaAgreement(nw *core.Network) []Violation {
	peers := nw.Peers()
	if len(peers) == 0 || peers[0].ReplicationFactor() <= 1 {
		return nil
	}
	c := &replicaChecker{
		dumps:   make(map[transport.Addr][]core.BucketSnapshot, len(peers)),
		replica: make(map[transport.Addr]map[string]*core.BucketSnapshot, len(peers)),
		max:     64,
	}
	// Ring order by node identifier: the independent oracle for every
	// peer's expected mirror set.
	ring := append([]*core.Peer(nil), peers...)
	sort.Slice(ring, func(i, j int) bool {
		return ring[i].Node().Self().ID.Less(ring[j].Node().Self().ID)
	})
	c.ring = ring
	for _, p := range ring {
		addr := p.Addr()
		c.dumps[addr] = p.DumpIndex()
		byKey := make(map[string]*core.BucketSnapshot)
		reps := p.DumpReplicas()
		for i := range reps {
			byKey[reps[i].Key] = &reps[i]
		}
		c.replica[addr] = byKey
	}
	for i, p := range ring {
		mirrors := c.mirrorsOf(i, p.ReplicationFactor()-1)
		c.checkIndexAgreement(p, mirrors)
		c.checkRepoAgreement(p, mirrors)
	}
	return c.out
}

type replicaChecker struct {
	ring    []*core.Peer
	dumps   map[transport.Addr][]core.BucketSnapshot
	replica map[transport.Addr]map[string]*core.BucketSnapshot
	out     []Violation
	max     int
}

func (c *replicaChecker) add(inv string, node moods.NodeName, obj moods.ObjectID, format string, args ...any) {
	if len(c.out) >= c.max {
		return
	}
	c.out = append(c.out, Violation{Invariant: inv, Node: node, Object: obj, Detail: fmt.Sprintf(format, args...)})
}

// mirrorsOf returns the next want live peers after ring index i — the
// expected mirror set of ring[i].
func (c *replicaChecker) mirrorsOf(i, want int) []*core.Peer {
	if want > len(c.ring)-1 {
		want = len(c.ring) - 1
	}
	out := make([]*core.Peer, 0, want)
	for j := 1; j <= len(c.ring)-1 && len(out) < want; j++ {
		out = append(out, c.ring[(i+j)%len(c.ring)])
	}
	return out
}

// checkIndexAgreement compares every non-empty primary bucket of p
// against the copy each expected mirror holds.
func (c *replicaChecker) checkIndexAgreement(p *core.Peer, mirrors []*core.Peer) {
	for _, b := range c.dumps[p.Addr()] {
		if len(b.Entries) == 0 {
			continue // empty buckets need no copies
		}
		for _, m := range mirrors {
			rb := c.replica[m.Addr()][b.Key]
			if rb == nil {
				c.add("replica-missing", m.Name(), "", "no copy of %s's bucket %s (%d entries)", p.Name(), b.Key, len(b.Entries))
				continue
			}
			if rb.Delegated != b.Delegated {
				c.add("replica-agreement", m.Name(), "", "bucket %s delegated=%v, primary %s says %v", b.Key, rb.Delegated, p.Name(), b.Delegated)
			}
			c.compareEntries(p, m, b, rb)
		}
	}
}

// compareEntries diffs two sorted entry slices (both dumps sort by
// hashed id).
func (c *replicaChecker) compareEntries(p, m *core.Peer, b core.BucketSnapshot, rb *core.BucketSnapshot) {
	i, j := 0, 0
	for i < len(b.Entries) && j < len(rb.Entries) {
		pe, re := b.Entries[i], rb.Entries[j]
		switch {
		case pe.ID.Less(re.ID):
			c.add("replica-agreement", m.Name(), pe.Object, "bucket %s missing record (primary %s has it)", b.Key, p.Name())
			i++
		case re.ID.Less(pe.ID):
			c.add("replica-agreement", m.Name(), re.Object, "bucket %s has extra record (primary %s lacks it)", b.Key, p.Name())
			j++
		default:
			if pe.Object != re.Object || pe.Latest != re.Latest || pe.Prev != re.Prev || pe.Arrived != re.Arrived {
				c.add("replica-agreement", m.Name(), pe.Object, "bucket %s copy %s@%v(prev %s) != primary %s@%v(prev %s)",
					b.Key, re.Latest, re.Arrived, re.Prev, pe.Latest, pe.Arrived, pe.Prev)
			}
			i++
			j++
		}
	}
	for ; i < len(b.Entries); i++ {
		c.add("replica-agreement", m.Name(), b.Entries[i].Object, "bucket %s missing record (primary %s has it)", b.Key, p.Name())
	}
	for ; j < len(rb.Entries); j++ {
		c.add("replica-agreement", m.Name(), rb.Entries[j].Object, "bucket %s has extra record (primary %s lacks it)", b.Key, p.Name())
	}
}

// checkRepoAgreement compares p's IOP repository against the mirrored
// copy each expected mirror holds for p's address.
func (c *replicaChecker) checkRepoAgreement(p *core.Peer, mirrors []*core.Peer) {
	visits := p.DumpVisits()
	if len(visits) == 0 {
		return
	}
	objs := make([]moods.ObjectID, 0, len(visits))
	for obj := range visits {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, m := range mirrors {
		copyOf := m.DumpRepoReplicas()[p.Addr()]
		if copyOf == nil {
			c.add("repo-replica-missing", m.Name(), "", "no repository copy for %s (%d objects)", p.Name(), len(visits))
			continue
		}
		for _, obj := range objs {
			want := visits[obj]
			got := copyOf[obj]
			if len(got) != len(want) {
				c.add("repo-replica-agreement", m.Name(), obj, "copy of %s has %d visits, primary has %d", p.Name(), len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					c.add("repo-replica-agreement", m.Name(), obj, "copy of %s visit %d = %+v, primary %+v", p.Name(), i, got[i], want[i])
					break
				}
			}
		}
		extras := make([]moods.ObjectID, 0)
		for obj := range copyOf {
			if _, ok := visits[obj]; !ok {
				extras = append(extras, obj)
			}
		}
		sort.Slice(extras, func(i, j int) bool { return extras[i] < extras[j] })
		for _, obj := range extras {
			c.add("repo-replica-agreement", m.Name(), obj, "copy of %s has object the primary never observed", p.Name())
		}
	}
}
