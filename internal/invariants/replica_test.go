package invariants

import (
	"testing"
	"time"

	"peertrack/internal/core"
	"peertrack/internal/moods"
)

func TestReplicaAgreementCleanNetwork(t *testing.T) {
	for _, factor := range []int{2, 3} {
		nw := buildTracked(t, 10, core.Config{ReplicationFactor: factor})
		nw.SyncReplicas()
		if vs := CheckReplicaAgreement(nw); len(vs) != 0 {
			t.Errorf("factor %d: unexpected violations: %v", factor, vs)
		}
	}
}

func TestReplicaAgreementFactorOneIsVacuous(t *testing.T) {
	nw := buildTracked(t, 8, core.Config{})
	if vs := CheckReplicaAgreement(nw); len(vs) != 0 {
		t.Errorf("factor 1 reported violations: %v", vs)
	}
}

func TestReplicaAgreementAfterMembershipChange(t *testing.T) {
	nw := buildTracked(t, 10, core.Config{ReplicationFactor: 3})
	if _, _, err := nw.Grow(4); err != nil {
		t.Fatal(err)
	}
	nw.SyncReplicas()
	if vs := CheckReplicaAgreement(nw); len(vs) != 0 {
		t.Errorf("after grow: %v", vs)
	}
	if _, _, err := nw.Shrink(5); err != nil {
		t.Fatal(err)
	}
	nw.SyncReplicas()
	if vs := CheckReplicaAgreement(nw); len(vs) != 0 {
		t.Errorf("after shrink: %v", vs)
	}
}

func TestReplicaAgreementDetectsCorruption(t *testing.T) {
	nw := buildTracked(t, 10, core.Config{ReplicationFactor: 2})
	nw.SyncReplicas()
	if vs := CheckReplicaAgreement(nw); len(vs) != 0 {
		t.Fatalf("clean network reported violations: %v", vs)
	}

	// Tamper with a primary record without telling the mirrors: the
	// checker must see the copy disagree.
	var victim *core.Peer
	var key string
	for _, p := range nw.Peers() {
		for _, b := range p.DumpIndex() {
			if len(b.Entries) > 0 {
				victim, key = p, b.Key
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		t.Fatal("no populated bucket to corrupt")
	}
	victim.InjectIndexEntry(key, core.IndexEntry{
		Object:  moods.ObjectID("urn:epc:forged"),
		ID:      moods.ObjectID("urn:epc:forged").Hash(),
		Latest:  victim.Name(),
		Arrived: time.Hour,
	})
	vs := CheckReplicaAgreement(nw)
	if !hasInvariant(vs, "replica-agreement") {
		t.Fatalf("forged primary record not detected: %v", vs)
	}
}
