package invariants

import (
	"strings"
	"testing"
	"time"

	"peertrack/internal/chord"
	"peertrack/internal/core"
	"peertrack/internal/ids"
	"peertrack/internal/moods"
	"peertrack/internal/transport"
)

// buildTracked constructs a converged network and drives a few object
// trajectories through it via the simulation kernel.
func buildTracked(t *testing.T, nodes int, peerCfg core.Config) *core.Network {
	t.Helper()
	nw, err := core.BuildNetwork(core.NetworkConfig{Nodes: nodes, Seed: 7, Peer: peerCfg})
	if err != nil {
		t.Fatal(err)
	}
	trajectories := map[moods.ObjectID][]int{
		"urn:epc:obj-a": {0, 3, 5, 1},
		"urn:epc:obj-b": {2, 4},
		"urn:epc:obj-c": {5, 0, 2, 6, 3},
		"urn:epc:obj-d": {1},
	}
	for obj, trace := range trajectories {
		for i, idx := range trace {
			obs := moods.Observation{
				Object: obj,
				Node:   nw.Peers()[idx%nodes].Name(),
				At:     time.Duration(i+1) * 10 * time.Second,
			}
			if err := nw.ScheduleObservation(obs); err != nil {
				t.Fatal(err)
			}
		}
	}
	nw.StartWindows(2 * time.Minute)
	nw.Run()
	return nw
}

func strict() Options {
	return Options{RequireIOPExact: true, RequireIOPBidir: true}
}

func hasInvariant(vs []Violation, name string) bool {
	for _, v := range vs {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

func TestCleanNetworkHasNoViolations(t *testing.T) {
	for _, mode := range []core.Mode{core.GroupIndexing, core.IndividualIndexing} {
		nw := buildTracked(t, 8, core.Config{Mode: mode})
		if vs := CheckNetwork(nw, strict()); len(vs) != 0 {
			t.Errorf("mode %v: unexpected violations: %v", mode, vs)
		}
	}
}

func TestCleanNetworkAfterGrowShrink(t *testing.T) {
	nw := buildTracked(t, 8, core.Config{})
	if _, _, err := nw.Grow(5); err != nil {
		t.Fatal(err)
	}
	if vs := CheckNetwork(nw, Options{RequireIOPExact: true}); len(vs) != 0 {
		t.Errorf("after grow: %v", vs)
	}
	if _, _, err := nw.Shrink(3); err != nil {
		t.Fatal(err)
	}
	// Departed nodes take their repositories with them; objects that
	// visited them can no longer prove an exact chain, so only the
	// structural profile applies network-wide.
	if vs := CheckNetwork(nw, Options{}); len(vs) != 0 {
		t.Errorf("after shrink: %v", vs)
	}
}

func TestDetectsPlantedDuplicate(t *testing.T) {
	nw := buildTracked(t, 8, core.Config{})
	obj := moods.ObjectID("urn:epc:obj-a")
	id := obj.Hash()
	// Plant a second copy of obj-a's record in some other peer's bucket
	// at the current prefix level.
	pfx := ids.PrefixOf(id, nw.PM.Lp())
	var victim *core.Peer
	for _, p := range nw.Peers() {
		if !p.Node().Owns(pfx.GatewayID()) {
			victim = p
			break
		}
	}
	victim.InjectIndexEntry(pfx.String(), core.IndexEntry{
		Object: obj, ID: id, Latest: victim.Name(), Arrived: time.Hour,
	})
	vs := CheckNetwork(nw, strict())
	if !hasInvariant(vs, "index-unique") {
		t.Errorf("planted duplicate not reported as index-unique: %v", vs)
	}
	if !hasInvariant(vs, "gateway-placement") {
		t.Errorf("misplaced bucket not reported as gateway-placement: %v", vs)
	}
}

func TestDetectsRemovedRecord(t *testing.T) {
	nw := buildTracked(t, 8, core.Config{})
	obj := moods.ObjectID("urn:epc:obj-b")
	id := obj.Hash()
	pfx := ids.PrefixOf(id, nw.PM.Lp())
	for _, p := range nw.Peers() {
		p.RemoveIndexEntry(pfx.String(), id)
	}
	vs := CheckNetwork(nw, strict())
	if !hasInvariant(vs, "index-missing") {
		t.Errorf("removed record not reported as index-missing: %v", vs)
	}
}

func TestDetectsCorruptHead(t *testing.T) {
	nw := buildTracked(t, 8, core.Config{})
	obj := moods.ObjectID("urn:epc:obj-c")
	id := obj.Hash()
	pfx := ids.PrefixOf(id, nw.PM.Lp())
	var gw *core.Peer
	for _, p := range nw.Peers() {
		if p.Node().Owns(pfx.GatewayID()) {
			gw = p
			break
		}
	}
	// Overwrite the record with a head pointing at the wrong node/time.
	gw.InjectIndexEntry(pfx.String(), core.IndexEntry{
		Object: obj, ID: id, Latest: nw.Peers()[7].Name(), Arrived: time.Hour,
	})
	vs := CheckNetwork(nw, strict())
	if !hasInvariant(vs, "index-head") {
		t.Errorf("corrupt head not reported as index-head: %v", vs)
	}
}

func TestDetectsForeignPrefixEntry(t *testing.T) {
	nw := buildTracked(t, 8, core.Config{})
	// Fabricate a record whose id does not extend the bucket prefix.
	obj := moods.ObjectID("urn:epc:obj-a")
	id := obj.Hash()
	pfx := ids.PrefixOf(id, nw.PM.Lp())
	other := moods.ObjectID("urn:epc:obj-b")
	var gw *core.Peer
	for _, p := range nw.Peers() {
		if p.Node().Owns(pfx.GatewayID()) {
			gw = p
			break
		}
	}
	gw.InjectIndexEntry(pfx.String(), core.IndexEntry{
		Object: other, ID: other.Hash(), Latest: gw.Name(), Arrived: time.Hour,
	})
	vs := CheckNetwork(nw, Options{})
	if ids.PrefixOf(other.Hash(), nw.PM.Lp()).String() != pfx.String() {
		if !hasInvariant(vs, "triangle-prefix") {
			t.Errorf("foreign-prefix entry not reported: %v", vs)
		}
	}
	// Either way the duplicate must surface.
	if !hasInvariant(vs, "index-unique") && !hasInvariant(vs, "index-head") {
		t.Errorf("planted record produced no violation at all: %v", vs)
	}
}

func TestCheckStats(t *testing.T) {
	good := transport.Snapshot{Calls: 10, Messages: 17, Failures: 3, Drops: 2, Blocked: 1}
	if vs := CheckStats(good); len(vs) != 0 {
		t.Errorf("conserving snapshot flagged: %v", vs)
	}
	bad := transport.Snapshot{Calls: 10, Messages: 20, Failures: 0, Drops: 2, Blocked: 1}
	vs := CheckStats(bad)
	if !hasInvariant(vs, "stats-conservation") {
		t.Errorf("non-conserving snapshot not flagged: %v", vs)
	}
	if len(vs) > 0 && !strings.Contains(vs[0].Detail, "calls=10") {
		t.Errorf("detail missing counters: %v", vs[0])
	}
}

func TestCheckRing(t *testing.T) {
	mem := transport.NewMemory(1)
	addrs := make([]transport.Addr, 6)
	for i := range addrs {
		addrs[i] = transport.Addr(core.NodeNameFor(i))
	}
	nodes, err := chord.BuildStaticRing(mem, addrs, chord.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckRing(nodes); len(vs) != 0 {
		t.Fatalf("static ring not clean: %v", vs)
	}

	// A voluntary departure relinks the neighbours synchronously, so the
	// live projection of the ring stays consistent with no stabilization
	// at all — a property worth pinning down.
	if err := nodes[2].Leave(); err != nil {
		t.Fatal(err)
	}
	if vs := CheckRing(nodes); len(vs) != 0 {
		t.Errorf("clean leave broke ring invariants: %v", vs)
	}

	// Fresh unwired nodes are each their own single-node ring; as a set
	// they are maximally unconverged and every one must be flagged.
	mem2 := transport.NewMemory(2)
	var loose []*chord.Node
	for i := 0; i < 3; i++ {
		n, err := chord.New(mem2, transport.Addr(core.NodeNameFor(i)), chord.Config{})
		if err != nil {
			t.Fatal(err)
		}
		loose = append(loose, n)
	}
	vs := CheckRing(loose)
	if len(vs) == 0 {
		t.Fatal("unwired node set not flagged")
	}
	if !hasInvariant(vs, "ring-successor") && !hasInvariant(vs, "ring-succ-len") {
		t.Errorf("expected successor violations, got %v", vs)
	}
	chord.WireStaticRing(loose)
	if vs := CheckRing(loose); len(vs) != 0 {
		t.Errorf("statically wired ring not clean: %v", vs)
	}
}
