package invariants

import (
	"errors"
	"testing"
	"time"

	"peertrack/internal/transport"
)

func echo(from transport.Addr, req any) (any, error) { return req, nil }

// A Resilient wrapper driven as the sole caller of a Memory transport
// through success, retry-exhaustion against a dead node, breaker
// rejection, and recovery must satisfy every resilience accounting
// identity.
func TestCheckResilienceCleanRun(t *testing.T) {
	mem := transport.NewMemory(1)
	mem.Register("a", echo)
	mem.Register("b", echo)
	var now time.Duration
	r := transport.NewResilient(mem, func() time.Duration { return now }, nil, transport.ResilientConfig{
		MaxAttempts:      3,
		BreakerThreshold: 6,
		BreakerCooldown:  time.Second,
		Seed:             3,
	})

	for i := 0; i < 5; i++ {
		if _, err := r.Call("a", "b", "ping"); err != nil {
			t.Fatal(err)
		}
	}
	mem.Kill("b")
	for i := 0; i < 3; i++ {
		if _, err := r.Call("a", "b", "ping"); !errors.Is(err, transport.ErrUnreachable) {
			t.Fatalf("dead-node call %d: %v", i, err)
		}
	}
	mem.Revive("b")
	now = 2 * time.Second // past the breaker cooldown
	if _, err := r.Call("a", "b", "ping"); err != nil {
		t.Fatalf("post-revive call: %v", err)
	}

	if vs := CheckResilience(r.Resilience(), mem.Stats().Snapshot()); len(vs) != 0 {
		t.Errorf("clean resilient run flagged: %v", vs)
	}
}

// Planted inconsistencies: a retry billed as an extra drop (the exact
// double-counting bug the invariant exists for), a wrapper bypassed by
// another caller, and a non-conserving wrapper snapshot must each be
// flagged.
func TestCheckResilienceDetectsViolations(t *testing.T) {
	res := transport.ResilienceSnapshot{
		Calls: 10, Attempts: 12, Retries: 2, Successes: 8, Failures: 2,
	}
	inner := transport.Snapshot{
		Calls: 12, Messages: 2*12 - 4, Failures: 4, Drops: 4,
	}
	if vs := CheckResilience(res, inner); len(vs) != 0 {
		t.Fatalf("consistent pair flagged: %v", vs)
	}

	// One retried call's failed attempt billed as a drop twice: drops
	// exceed the retry/failure decomposition.
	doubled := inner
	doubled.Drops, doubled.Failures = 5, 5
	doubled.Messages = 2*doubled.Calls - doubled.Drops
	if vs := CheckResilience(res, doubled); !hasInvariant(vs, "resilience-fault-accounting") {
		t.Errorf("double-counted drop not flagged: %v", vs)
	}

	// Traffic reaching the transport around the wrapper breaks the
	// sole-caller attempt identity.
	bypassed := inner
	bypassed.Calls = 15
	bypassed.Messages = 2*15 - 4
	if vs := CheckResilience(res, bypassed); !hasInvariant(vs, "resilience-attempt-accounting") {
		t.Errorf("bypassed wrapper not flagged: %v", vs)
	}

	// A wrapper snapshot that loses a call outcome fails its own
	// conservation check.
	lost := res
	lost.Successes = 7
	if vs := CheckResilience(lost, inner); !hasInvariant(vs, "resilience-conservation") {
		t.Errorf("non-conserving wrapper snapshot not flagged: %v", vs)
	}
}
