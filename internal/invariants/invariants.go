// Package invariants is the whole-network protocol-invariant checker
// behind the chaos harness (internal/chaos). Given a quiesced
// *core.Network it inspects every peer's state directly — gateway
// buckets, local repositories, IOP links, transport counters, the
// overlay ring — without sending a single message, and reports every
// way the global state disagrees with the PeerTrack protocol's
// correctness conditions:
//
//   - gateway placement: every index bucket lives on the overlay node
//     that currently owns its gateway identifier (the successor of
//     hash(prefix) — Section IV-A1), and ownership of every probed key
//     is claimed by exactly one live node;
//   - triangle prefix discipline: a group bucket only holds records
//     whose hashed id extends the bucket's prefix (the Data Triangle
//     delegation rule of Section IV-A2);
//   - index uniqueness and reachability: each tracked object has
//     exactly one index record network-wide, and the Section IV-A3
//     bidirectional search (descent along the object's bits, ascent
//     towards L_min) finds it from the current prefix level;
//   - index head correctness: the record's Latest/Arrived equal the
//     oracle's most recent observation;
//   - IOP list consistency: walking the distributed doubly-linked list
//     backwards from the index head visits only (node, time) pairs the
//     oracle recorded, terminates, and — when exactness is required —
//     reproduces the full trajectory; forward (To) links mirror the
//     backward chain;
//   - transport conservation: calls = completed + dropped + blocked and
//     the message ledger balances (transport.Snapshot.Conserves).
//
// The checker reads state through the core package's inspection API
// (Peer.DumpIndex and friends), so a checkpoint never perturbs message
// statistics or the fault-injection randomness stream — interleaving
// checks between chaos steps cannot change what a seed replays.
package invariants

import (
	"fmt"
	"sort"

	"peertrack/internal/chord"
	"peertrack/internal/core"
	"peertrack/internal/ids"
	"peertrack/internal/moods"
	"peertrack/internal/transport"
)

// Violation is one detected breach of a protocol invariant.
type Violation struct {
	// Invariant names the broken rule (e.g. "gateway-placement",
	// "iop-exact"); the catalog is documented in DESIGN.md.
	Invariant string
	// Node is the peer where the inconsistency materialises ("" when
	// the violation is global, e.g. ownership or stats).
	Node moods.NodeName
	// Object is the tracked object involved ("" for structural
	// violations).
	Object moods.ObjectID
	// Detail is a human-readable description with the observed vs
	// expected values.
	Detail string
}

func (v Violation) String() string {
	s := v.Invariant
	if v.Node != "" {
		s += fmt.Sprintf(" node=%s", v.Node)
	}
	if v.Object != "" {
		s += fmt.Sprintf(" obj=%s", v.Object)
	}
	return s + ": " + v.Detail
}

// Options tunes how strict a check is. The zero value is the loose
// profile: structural invariants only, suitable for checkpoints taken
// while messages may have been lost.
type Options struct {
	// RequireIOPExact additionally demands that every object's IOP
	// chain reproduce the oracle trajectory exactly. Only valid at
	// checkpoints where no stitch message can have been lost (drop rate
	// zero and fully-connected flushes).
	RequireIOPExact bool
	// RequireIOPBidir additionally demands that every forward (To)
	// link's target hold the mirroring visit with a matching From
	// pointer.
	RequireIOPBidir bool
	// SkipIOP excludes objects from the IOP-chain checks (structural
	// index checks still apply). The chaos runner populates it with
	// objects whose trajectory crossed a departed node — their
	// repository left the network with them, by design.
	SkipIOP map[moods.ObjectID]bool
	// MaxViolations caps the report (default 64); checking stops early
	// once reached.
	MaxViolations int
}

// CheckNetwork inspects the whole network and returns every invariant
// violation found (nil if the state is consistent). The network must be
// quiesced: no event mid-flight, no goroutine touching peer state.
func CheckNetwork(nw *core.Network, opts Options) []Violation {
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 64
	}
	c := &checker{nw: nw, opts: opts, byName: make(map[moods.NodeName]*core.Peer)}
	for _, p := range nw.Peers() {
		c.peers = append(c.peers, p)
		c.byName[p.Name()] = p
	}
	c.snapshot()
	c.checkBuckets()
	c.checkObjects()
	c.out = append(c.out, truncate(CheckStats(nw.Stats().Snapshot()), opts.MaxViolations-len(c.out))...)
	if nw.OverlayKind() == core.ChordOverlay {
		nodes := make([]*chord.Node, 0, len(c.peers))
		for _, p := range c.peers {
			if n, ok := p.Node().(*chord.Node); ok {
				nodes = append(nodes, n)
			}
		}
		c.out = append(c.out, truncate(CheckRing(nodes), opts.MaxViolations-len(c.out))...)
	}
	return c.out
}

// CheckStats verifies the transport accounting identity: every call
// produces a request and either a response (completed) or no response
// (dropped or blocked), so Messages == 2·Calls − Drops − Blocked, and
// every drop or block is also billed as a failure.
func CheckStats(s transport.Snapshot) []Violation {
	if s.Conserves() {
		return nil
	}
	return []Violation{{
		Invariant: "stats-conservation",
		Detail: fmt.Sprintf("calls=%d messages=%d failures=%d drops=%d blocked=%d",
			s.Calls, s.Messages, s.Failures, s.Drops, s.Blocked),
	}}
}

func truncate(vs []Violation, n int) []Violation {
	if n <= 0 {
		return nil
	}
	if len(vs) > n {
		vs = vs[:n]
	}
	return vs
}

// checker carries one CheckNetwork pass.
type checker struct {
	nw     *core.Network
	opts   Options
	peers  []*core.Peer
	byName map[moods.NodeName]*core.Peer

	// Immutable snapshots taken up front so every check sees one
	// consistent cut of the state.
	dumps  map[moods.NodeName][]core.BucketSnapshot
	bucket map[moods.NodeName]map[string]*core.BucketSnapshot
	visits map[moods.NodeName]map[moods.ObjectID][]core.VisitRecord

	out  []Violation
	full bool
}

func (c *checker) add(inv string, node moods.NodeName, obj moods.ObjectID, format string, args ...any) {
	if c.full {
		return
	}
	c.out = append(c.out, Violation{Invariant: inv, Node: node, Object: obj, Detail: fmt.Sprintf(format, args...)})
	if len(c.out) >= c.opts.MaxViolations {
		c.full = true
	}
}

func (c *checker) snapshot() {
	c.dumps = make(map[moods.NodeName][]core.BucketSnapshot, len(c.peers))
	c.bucket = make(map[moods.NodeName]map[string]*core.BucketSnapshot, len(c.peers))
	c.visits = make(map[moods.NodeName]map[moods.ObjectID][]core.VisitRecord, len(c.peers))
	for _, p := range c.peers {
		name := p.Name()
		dump := p.DumpIndex()
		c.dumps[name] = dump
		byKey := make(map[string]*core.BucketSnapshot, len(dump))
		for i := range dump {
			byKey[dump[i].Key] = &dump[i]
		}
		c.bucket[name] = byKey
		c.visits[name] = p.DumpVisits()
	}
}

// ownerOf returns the unique live peer owning key, reporting an
// ownership violation when zero or several claim it.
func (c *checker) ownerOf(key ids.ID, obj moods.ObjectID) (*core.Peer, bool) {
	var owner *core.Peer
	for _, p := range c.peers {
		if !p.Node().Owns(key) {
			continue
		}
		if owner != nil {
			c.add("ownership", "", obj, "key %s claimed by both %s and %s", key.Short(), owner.Name(), p.Name())
			return nil, false
		}
		owner = p
	}
	if owner == nil {
		c.add("ownership", "", obj, "key %s owned by no live node", key.Short())
		return nil, false
	}
	return owner, true
}

// checkBuckets validates every bucket structurally: placement on the
// owning node, prefix discipline, hash integrity, and global uniqueness
// of index records.
func (c *checker) checkBuckets() {
	where := make(map[moods.ObjectID]string) // object -> "node/bucket" of first sighting
	for _, p := range c.peers {
		name := p.Name()
		for _, b := range c.dumps[name] {
			for _, e := range b.Entries {
				if e.ID != e.Object.Hash() {
					c.add("entry-hash", name, e.Object, "stored id %s != hash %s", e.ID.Short(), e.Object.Hash().Short())
				}
				if e.Latest == "" {
					c.add("entry-head", name, e.Object, "index record with empty Latest")
				}
				if b.Individual {
					if !p.Node().Owns(e.ID) {
						c.add("gateway-placement", name, e.Object, "individual record not owned (id %s)", e.ID.Short())
					}
				} else if !b.Prefix.Matches(e.ID) {
					c.add("triangle-prefix", name, e.Object, "id %s outside bucket prefix %s", e.ID.Short(), b.Key)
				}
				loc := string(name) + "/" + b.Key
				if prev, dup := where[e.Object]; dup {
					c.add("index-unique", name, e.Object, "also indexed at %s", prev)
				} else {
					where[e.Object] = loc
				}
			}
			if !b.Individual && len(b.Entries) > 0 {
				if owner, ok := c.ownerOf(b.Prefix.GatewayID(), ""); ok && owner != p {
					c.add("gateway-placement", name, "", "bucket %s belongs on %s", b.Key, owner.Name())
				}
			}
		}
	}
}

// checkObjects validates, for every object the oracle knows, that the
// index record is reachable and correct and that the IOP list matches
// the recorded trajectory.
func (c *checker) checkObjects() {
	for _, obj := range c.nw.Oracle.ObjectIDs() {
		if c.full {
			return
		}
		hist := c.nw.Oracle.History(obj)
		if len(hist) == 0 {
			continue
		}
		entry, found := c.findIndex(obj)
		if !found {
			c.add("index-missing", "", obj, "no index record reachable via the IV-A3 search")
			continue
		}
		last := hist[len(hist)-1]
		if entry.Latest != last.Node || entry.Arrived != last.At {
			c.add("index-head", "", obj, "index says %s@%v, oracle says %s@%v",
				entry.Latest, entry.Arrived, last.Node, last.At)
			continue // the walk below would start from the wrong head
		}
		if c.opts.SkipIOP[obj] {
			continue
		}
		c.checkIOP(obj, entry, hist)
	}
}

// findIndex statically mirrors the core query path (Peer.findIndex):
// current-level probe, Data Triangle descent along the object's bits,
// then ascent towards L_min — against the snapshotted buckets.
func (c *checker) findIndex(obj moods.ObjectID) (core.IndexEntry, bool) {
	id := obj.Hash()
	if len(c.peers) > 0 && c.peers[0].Mode() == core.IndividualIndexing {
		owner, ok := c.ownerOf(id, obj)
		if !ok {
			return core.IndexEntry{}, false
		}
		e, found, _ := c.probeAt(owner, core.IndividualBucketKey, id, obj)
		return e, found
	}

	lp := c.nw.PM.Lp()
	pfx := ids.PrefixOf(id, lp)
	entry, found, delegated := c.probe(pfx, id, obj)
	if found {
		return entry, true
	}

	lo, hi := c.nw.PM.LpRange()
	maxDescent := 2
	if len(c.peers) > 0 {
		maxDescent = c.peers[0].MaxDescent()
	}
	child := pfx
	for depth := 0; (delegated || hi > child.Len) && depth < maxDescent && child.Len < ids.Bits; depth++ {
		child = child.Child(child.NextBit(id))
		entry, found, delegated = c.probe(child, id, obj)
		if found {
			return entry, true
		}
	}

	lmin := c.nw.PM.LMin()
	if lo > lmin {
		lmin = lo
	}
	for cur := pfx; cur.Len > lmin; {
		cur = cur.Parent()
		entry, found, delegated = c.probe(cur, id, obj)
		if found {
			return entry, true
		}
		if delegated {
			ch := cur.Child(cur.NextBit(id))
			if ch.Len != pfx.Len {
				entry, found, _ = c.probe(ch, id, obj)
				if found {
					return entry, true
				}
			}
		}
	}
	return core.IndexEntry{}, false
}

// probe looks an object up in one prefix bucket on that prefix's owner,
// returning (entry, found, delegated).
func (c *checker) probe(pfx ids.Prefix, id ids.ID, obj moods.ObjectID) (core.IndexEntry, bool, bool) {
	owner, ok := c.ownerOf(pfx.GatewayID(), obj)
	if !ok {
		return core.IndexEntry{}, false, false
	}
	return c.probeAt(owner, pfx.String(), id, obj)
}

func (c *checker) probeAt(owner *core.Peer, key string, id ids.ID, obj moods.ObjectID) (core.IndexEntry, bool, bool) {
	b := c.bucket[owner.Name()][key]
	if b == nil {
		return core.IndexEntry{}, false, false
	}
	i := sort.Search(len(b.Entries), func(i int) bool { return !b.Entries[i].ID.Less(id) })
	if i < len(b.Entries) && b.Entries[i].ID == id {
		return b.Entries[i], true, b.Delegated
	}
	return core.IndexEntry{}, false, b.Delegated
}

// checkIOP walks the distributed doubly-linked list backwards from the
// index head and compares the chain against the oracle trajectory.
func (c *checker) checkIOP(obj moods.ObjectID, entry core.IndexEntry, hist []moods.Observation) {
	// The oracle's (node, time) pairs, for membership tests.
	inOracle := make(map[moods.Visit]bool, len(hist))
	for _, o := range hist {
		inOracle[moods.Visit{Node: o.Node, Arrived: o.At}] = true
	}

	var rev []moods.Visit
	cur := entry.Latest
	boundDur := int64(-1) // pickVisit semantics: negative bound = latest overall
	maxSteps := len(hist) + 2
	for step := 0; ; step++ {
		if step >= maxSteps {
			c.add("iop-cycle", cur, obj, "walk exceeded %d steps (oracle path has %d visits)", maxSteps, len(hist))
			return
		}
		vs, ok := c.visits[cur][obj]
		if !ok {
			if _, present := c.byName[cur]; !present {
				// The chain points into a departed node's repository;
				// the data left with it. Only exactness can complain.
				if c.opts.RequireIOPExact {
					c.add("iop-dangling", cur, obj, "chain reaches departed node")
				}
				return
			}
			c.add("iop-broken", cur, obj, "node holds no visits for object")
			return
		}
		v, ok := pickVisit(vs, boundDur)
		if !ok {
			c.add("iop-broken", cur, obj, "no visit before bound %d", boundDur)
			return
		}
		if !inOracle[moods.Visit{Node: cur, Arrived: v.Arrived}] {
			c.add("iop-foreign", cur, obj, "visit @%v never recorded by the oracle", v.Arrived)
			return
		}
		rev = append(rev, moods.Visit{Node: cur, Arrived: v.Arrived})
		if v.From == "" {
			break
		}
		boundDur = int64(v.Arrived)
		cur = v.From
	}

	if c.opts.RequireIOPExact {
		want := make(moods.Path, len(hist))
		for i, o := range hist {
			want[i] = moods.Visit{Node: o.Node, Arrived: o.At}
		}
		got := make(moods.Path, len(rev))
		for i, v := range rev {
			got[len(rev)-1-i] = v
		}
		if !got.Equal(want) {
			c.add("iop-exact", "", obj, "chain %v != oracle %v", got, want)
		}
	}

	// Forward-pointer mirror: every To link must target a node that
	// (if still present) holds a strictly later visit of the object.
	names := make([]string, 0, len(c.visits))
	for name := range c.visits {
		names = append(names, string(name))
	}
	sort.Strings(names)
	for _, ns := range names {
		name := moods.NodeName(ns)
		for _, v := range c.visits[name][obj] {
			if v.To == "" {
				continue
			}
			tvs, present := c.visits[v.To][obj]
			if !present {
				if _, alive := c.byName[v.To]; !alive {
					continue // target departed with its repository
				}
				c.add("iop-mirror", name, obj, "To=%s holds no visits", v.To)
				continue
			}
			mirrored := false
			for _, tv := range tvs {
				if tv.Arrived > v.Arrived && (!c.opts.RequireIOPBidir || tv.From == name) {
					mirrored = true
					break
				}
			}
			if !mirrored {
				c.add("iop-mirror", name, obj, "To=%s has no later visit mirroring @%v", v.To, v.Arrived)
			}
		}
	}
}

// pickVisit mirrors core's traversal rule: the latest visit strictly
// before bound, or the latest overall when bound < 0.
func pickVisit(visits []core.VisitRecord, bound int64) (core.VisitRecord, bool) {
	for i := len(visits) - 1; i >= 0; i-- {
		if bound < 0 || int64(visits[i].Arrived) < bound {
			return visits[i], true
		}
	}
	return core.VisitRecord{}, false
}
