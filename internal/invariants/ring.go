package invariants

import (
	"fmt"

	"peertrack/internal/chord"
	"peertrack/internal/moods"
)

// CheckRing verifies that a set of Chord nodes forms one fully
// converged ring: sorted by identifier, every live node's successor
// list is exactly the next min(r, m−1) live nodes and its predecessor
// is the previous one. Departed nodes (Left) are excluded. This is the
// post-churn convergence condition the chaos harness and the churn
// regression test assert after stabilization settles.
func CheckRing(nodes []*chord.Node) []Violation {
	live := make([]*chord.Node, 0, len(nodes))
	for _, n := range nodes {
		if !n.Left() {
			live = append(live, n)
		}
	}
	m := len(live)
	if m == 0 {
		return nil
	}
	sorted := append([]*chord.Node(nil), live...)
	chord.SortByID(sorted)

	var out []Violation
	add := func(n *chord.Node, inv, format string, args ...any) {
		out = append(out, Violation{
			Invariant: inv,
			Node:      moods.NodeName(n.Addr()),
			Detail:    fmt.Sprintf(format, args...),
		})
	}

	isLive := make(map[moods.NodeName]bool, m)
	for _, n := range live {
		isLive[moods.NodeName(n.Addr())] = true
	}

	for i, n := range sorted {
		succs := n.Successors()
		if m == 1 {
			if len(succs) != 1 || !succs[0].Equal(n.Self()) {
				add(n, "ring-successor", "single-node ring must point at itself, got %v", succs)
			}
			continue
		}
		// References to departed nodes linger in successor lists until
		// they age out (stabilization never pings list tails), occupying
		// capacity. The convergence condition is therefore on the list's
		// live projection: it must be exactly the next live nodes in ring
		// order, and it may fall short of min(r, m−1) only because stale
		// refs fill the list to capacity r.
		liveSuccs := succs[:0:0]
		for _, s := range succs {
			if isLive[moods.NodeName(s.Addr)] {
				liveSuccs = append(liveSuccs, s)
			}
		}
		wantLen := n.SuccessorListLen()
		if wantLen > m-1 {
			wantLen = m - 1
		}
		if len(liveSuccs) < wantLen && len(succs) < n.SuccessorListLen() {
			add(n, "ring-succ-len", "%d live successors of %d wanted (list %d/%d)",
				len(liveSuccs), wantLen, len(succs), n.SuccessorListLen())
		}
		for k := 0; k < len(liveSuccs) && k < wantLen; k++ {
			want := sorted[(i+1+k)%m].Self()
			if !liveSuccs[k].Equal(want) {
				add(n, "ring-successor", "live successors[%d]=%s, want %s", k, liveSuccs[k].Addr, want.Addr)
				break // the rest of the list is shifted; one report suffices
			}
		}
		wantPred := sorted[(i-1+m)%m].Self()
		if pred := n.Predecessor(); !pred.Equal(wantPred) {
			add(n, "ring-pred", "predecessor=%s, want %s", pred.Addr, wantPred.Addr)
		}
	}
	return out
}
