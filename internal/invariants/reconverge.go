package invariants

import (
	"fmt"

	"peertrack/internal/chord"
)

// CheckReconvergence asserts the churn-recovery invariant: after the
// last fault, the ring reconverges within maxRounds maintenance rounds.
// It drives the caller's maintain closure (one protocol maintenance
// round — stabilize, predecessor checks, optional gossip repair — over
// every live node) until CheckRing reports a clean ring or the budget
// is exhausted, and returns the number of rounds consumed.
//
// On success the violation slice is empty and the round count is the
// scenario's convergence latency — the metric the churn ledger pins.
// On exhaustion a "ring-reconverge" violation heads the residual
// CheckRing violations, so a failing report names both the invariant
// and the stuck state behind it.
func CheckReconvergence(nodes []*chord.Node, maintain func(), maxRounds int) (int, []Violation) {
	for round := 0; ; round++ {
		vs := CheckRing(nodes)
		if len(vs) == 0 {
			return round, nil
		}
		if round >= maxRounds {
			out := make([]Violation, 0, len(vs)+1)
			out = append(out, Violation{
				Invariant: "ring-reconverge",
				Detail: fmt.Sprintf("ring failed to reconverge within %d maintenance rounds (%d residual violations)",
					maxRounds, len(vs)),
			})
			return round, append(out, vs...)
		}
		maintain()
	}
}
