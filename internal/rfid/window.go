// Package rfid models the data-capture edge of a traceable network:
// receptors (RFID readers) deployed at nodes, the object streams they
// produce, and the adaptive capture windows that batch arrivals for
// group indexing.
//
// The windowing scheme is the paper's (Section IV-A1): a capture cycle
// ends when T_max virtual time has passed — keeping indexing timely when
// volume is low — or when N_max objects have been received — bounding
// indexing-message size when volume spikes. Whichever fires first closes
// the window, the buffered observations are flushed to the grouping
// stage, and a new cycle starts.
//
// Readings are assumed cleansed (duplicate-filtered, no phantom reads),
// as the paper assumes; the stream generators therefore emit clean
// events, and the optional Deduplicator covers the one cleansing step
// cheap enough to do at the edge.
package rfid

import (
	"time"

	"peertrack/internal/moods"
	"peertrack/internal/sim"
)

// WindowConfig sets the adaptive window bounds.
type WindowConfig struct {
	// TMax is the maximum cycle duration; a cycle flushes at TMax even
	// if nearly empty, bounding indexing delay. Default 1s.
	TMax time.Duration
	// NMax is the maximum number of observations per cycle; reaching it
	// flushes immediately, bounding message size. Default 1024.
	NMax int
}

func (c *WindowConfig) fill() {
	if c.TMax <= 0 {
		c.TMax = time.Second
	}
	if c.NMax <= 0 {
		c.NMax = 1024
	}
}

// Collector buffers one node's observations into adaptive windows and
// delivers each closed window to flush. It is driven by a simulation
// kernel: the TMax timer is virtual time.
//
// Collector is not safe for concurrent use; in the DES world all events
// run on the kernel's single logical thread. (The TCP deployment path
// uses its own mutex-guarded collector in the public facade.)
type Collector struct {
	cfg    WindowConfig
	kernel *sim.Kernel
	flush  func(batch []moods.Observation)

	buf   []moods.Observation
	timer sim.Timer

	// Windows counts closed windows; ByTimeout and BySize break down the
	// close reason (a window closed by Flush counts in neither).
	Windows   int
	ByTimeout int
	BySize    int
}

// NewCollector creates a collector. flush is called with each closed
// window's observations (ownership of the slice transfers to flush).
func NewCollector(kernel *sim.Kernel, cfg WindowConfig, flush func([]moods.Observation)) *Collector {
	cfg.fill()
	return &Collector{cfg: cfg, kernel: kernel, flush: flush}
}

// Observe adds one observation to the current window, opening a new
// window (and arming its TMax timer) if none is open. If the window
// reaches NMax it closes immediately.
func (c *Collector) Observe(obs moods.Observation) {
	if len(c.buf) == 0 {
		c.timer = c.kernel.Schedule(c.cfg.TMax, func() {
			c.timer = sim.Timer{}
			if len(c.buf) > 0 {
				c.ByTimeout++
				c.close()
			}
		})
	}
	c.buf = append(c.buf, obs)
	if len(c.buf) >= c.cfg.NMax {
		c.timer.Stop()
		c.timer = sim.Timer{}
		c.BySize++
		c.close()
	}
}

// Flush force-closes the current window, delivering any buffered
// observations. Used at simulation end so no capture is lost.
func (c *Collector) Flush() {
	c.timer.Stop()
	c.timer = sim.Timer{}
	if len(c.buf) > 0 {
		c.close()
	}
}

// Buffered returns the number of observations in the open window.
func (c *Collector) Buffered() int { return len(c.buf) }

func (c *Collector) close() {
	batch := c.buf
	c.buf = nil
	c.Windows++
	c.flush(batch)
}

// Deduplicator suppresses repeated reads of the same object at the same
// node within a guard interval — the standard smoothing step for dock
// door readers that see a tag dozens of times as a pallet rolls past.
type Deduplicator struct {
	guard time.Duration
	last  map[dedupKey]time.Duration
}

type dedupKey struct {
	obj  moods.ObjectID
	node moods.NodeName
}

// NewDeduplicator creates a deduplicator with the given guard interval.
func NewDeduplicator(guard time.Duration) *Deduplicator {
	return &Deduplicator{guard: guard, last: make(map[dedupKey]time.Duration)}
}

// Admit reports whether the observation is a fresh read (true) or a
// duplicate within the guard interval (false), updating state either
// way so a long dwell keeps extending the suppression.
func (d *Deduplicator) Admit(obs moods.Observation) bool {
	k := dedupKey{obs.Object, obs.Node}
	prev, seen := d.last[k]
	d.last[k] = obs.At
	if !seen {
		return true
	}
	return obs.At-prev > d.guard
}
