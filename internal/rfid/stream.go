package rfid

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"peertrack/internal/moods"
)

// Stream generators produce synthetic capture-event timings for one
// node. They return observations sorted by time, ready to feed a
// Collector through a simulation kernel.

// UniformStream spreads one observation per object uniformly at random
// over [start, start+span).
func UniformStream(rng *rand.Rand, objects []moods.ObjectID, node moods.NodeName,
	start, span time.Duration) []moods.Observation {
	out := make([]moods.Observation, len(objects))
	for i, o := range objects {
		out[i] = moods.Observation{
			Object: o,
			Node:   node,
			At:     start + time.Duration(rng.Int63n(int64(span))),
		}
	}
	sortObs(out)
	return out
}

// PoissonStream emits the objects with exponential inter-arrival times
// at the given mean rate (objects per second), starting at start. The
// number of observations equals len(objects); the total span follows
// from the rate.
func PoissonStream(rng *rand.Rand, objects []moods.ObjectID, node moods.NodeName,
	start time.Duration, rate float64) []moods.Observation {
	if rate <= 0 {
		rate = 1
	}
	out := make([]moods.Observation, len(objects))
	at := start
	for i, o := range objects {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		at += gap
		out[i] = moods.Observation{Object: o, Node: node, At: at}
	}
	return out
}

// BurstyStream models pallets arriving in bursts: objects are split
// into groups of burstSize; each burst's members arrive within
// burstSpread of each other, and bursts are separated by exponential
// gaps with mean meanGap. This is the "objects often move in groups"
// traffic shape that group indexing exploits.
func BurstyStream(rng *rand.Rand, objects []moods.ObjectID, node moods.NodeName,
	start time.Duration, burstSize int, burstSpread, meanGap time.Duration) []moods.Observation {
	if burstSize <= 0 {
		burstSize = 1
	}
	out := make([]moods.Observation, 0, len(objects))
	at := start
	for i := 0; i < len(objects); i += burstSize {
		end := i + burstSize
		if end > len(objects) {
			end = len(objects)
		}
		for _, o := range objects[i:end] {
			jitter := time.Duration(0)
			if burstSpread > 0 {
				jitter = time.Duration(rng.Int63n(int64(burstSpread)))
			}
			out = append(out, moods.Observation{Object: o, Node: node, At: at + jitter})
		}
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		at += burstSpread + gap
	}
	sortObs(out)
	return out
}

// NoisyStream duplicates each observation between 1 and maxReads times
// within dwell, modelling a dock-door reader seeing a tag repeatedly.
// Feed the result through a Deduplicator to recover the clean stream.
func NoisyStream(rng *rand.Rand, clean []moods.Observation, maxReads int, dwell time.Duration) []moods.Observation {
	if maxReads < 1 {
		maxReads = 1
	}
	out := make([]moods.Observation, 0, len(clean)*2)
	for _, obs := range clean {
		reads := 1 + rng.Intn(maxReads)
		for r := 0; r < reads; r++ {
			dup := obs
			if r > 0 && dwell > 0 {
				dup.At += time.Duration(rng.Int63n(int64(dwell)))
			}
			out = append(out, dup)
		}
	}
	sortObs(out)
	return out
}

// MeanRate reports the average arrival rate (observations per second)
// of a sorted stream; 0 for streams shorter than 2 events.
func MeanRate(stream []moods.Observation) float64 {
	if len(stream) < 2 {
		return 0
	}
	span := stream[len(stream)-1].At - stream[0].At
	if span <= 0 {
		return math.Inf(1)
	}
	return float64(len(stream)-1) / span.Seconds()
}

func sortObs(s []moods.Observation) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
}
