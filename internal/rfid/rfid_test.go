package rfid

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"peertrack/internal/moods"
	"peertrack/internal/sim"
)

func objects(n int) []moods.ObjectID {
	out := make([]moods.ObjectID, n)
	for i := range out {
		out[i] = moods.ObjectID(fmt.Sprintf("obj-%d", i))
	}
	return out
}

func TestWindowClosesOnNMax(t *testing.T) {
	k := sim.New(1)
	var batches [][]moods.Observation
	c := NewCollector(k, WindowConfig{TMax: time.Hour, NMax: 10}, func(b []moods.Observation) {
		batches = append(batches, b)
	})
	k.Schedule(0, func() {
		for i := 0; i < 25; i++ {
			c.Observe(moods.Observation{Object: moods.ObjectID(fmt.Sprintf("o%d", i)), At: k.Now()})
		}
	})
	// Run only past the arrivals, not the one-hour TMax timer: the
	// trailing partial window is closed by Flush, not by timeout.
	k.RunUntil(time.Minute)
	c.Flush()
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3 (10+10+5)", len(batches))
	}
	if len(batches[0]) != 10 || len(batches[1]) != 10 || len(batches[2]) != 5 {
		t.Fatalf("batch sizes = %d,%d,%d", len(batches[0]), len(batches[1]), len(batches[2]))
	}
	if c.BySize != 2 {
		t.Errorf("BySize = %d, want 2", c.BySize)
	}
	if c.ByTimeout != 0 {
		t.Errorf("ByTimeout = %d, want 0", c.ByTimeout)
	}
}

func TestWindowClosesOnTMax(t *testing.T) {
	k := sim.New(1)
	var batches [][]moods.Observation
	c := NewCollector(k, WindowConfig{TMax: time.Second, NMax: 1000}, func(b []moods.Observation) {
		batches = append(batches, b)
	})
	// Three observations in the first second, then two more much later.
	for _, at := range []time.Duration{0, 300 * time.Millisecond, 600 * time.Millisecond,
		5 * time.Second, 5*time.Second + 100*time.Millisecond} {
		at := at
		k.Schedule(at, func() {
			c.Observe(moods.Observation{Object: "o", At: k.Now()})
		})
	}
	k.Run()
	c.Flush()
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if len(batches[0]) != 3 || len(batches[1]) != 2 {
		t.Fatalf("batch sizes = %d,%d", len(batches[0]), len(batches[1]))
	}
	if c.ByTimeout < 1 {
		t.Errorf("ByTimeout = %d, want >= 1", c.ByTimeout)
	}
}

func TestWindowTimerRestartsPerWindow(t *testing.T) {
	k := sim.New(1)
	var closeTimes []time.Duration
	c := NewCollector(k, WindowConfig{TMax: time.Second, NMax: 1000}, func(b []moods.Observation) {
		closeTimes = append(closeTimes, k.Now())
	})
	k.Schedule(0, func() { c.Observe(moods.Observation{Object: "a"}) })
	k.Schedule(3*time.Second, func() { c.Observe(moods.Observation{Object: "b"}) })
	k.Run()
	if len(closeTimes) != 2 {
		t.Fatalf("closes = %v", closeTimes)
	}
	if closeTimes[0] != time.Second || closeTimes[1] != 4*time.Second {
		t.Fatalf("close times = %v, want [1s 4s]", closeTimes)
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	k := sim.New(1)
	calls := 0
	c := NewCollector(k, WindowConfig{}, func(b []moods.Observation) { calls++ })
	c.Flush()
	if calls != 0 || c.Windows != 0 {
		t.Fatal("empty flush produced a window")
	}
}

func TestNoObservationLost(t *testing.T) {
	k := sim.New(7)
	total := 0
	c := NewCollector(k, WindowConfig{TMax: 100 * time.Millisecond, NMax: 7}, func(b []moods.Observation) {
		total += len(b)
	})
	r := rand.New(rand.NewSource(2))
	const n = 500
	for i := 0; i < n; i++ {
		at := time.Duration(r.Intn(10000)) * time.Millisecond
		k.Schedule(at, func() { c.Observe(moods.Observation{Object: "o", At: at}) })
	}
	k.Run()
	c.Flush()
	if total != n {
		t.Fatalf("flushed %d observations, want %d", total, n)
	}
}

func TestUniformStreamSortedAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	objs := objects(200)
	s := UniformStream(r, objs, "dc-1", time.Minute, time.Hour)
	if len(s) != 200 {
		t.Fatalf("len = %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatal("stream not sorted")
		}
	}
	for _, o := range s {
		if o.At < time.Minute || o.At >= time.Minute+time.Hour {
			t.Fatalf("observation at %v outside window", o.At)
		}
		if o.Node != "dc-1" {
			t.Fatal("wrong node")
		}
	}
}

func TestPoissonStreamRate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := PoissonStream(r, objects(5000), "n", 0, 100) // 100 obj/s
	rate := MeanRate(s)
	if math.Abs(rate-100) > 10 {
		t.Fatalf("mean rate = %.1f, want ~100", rate)
	}
}

func TestBurstyStreamGroupsTogether(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := BurstyStream(r, objects(100), "n", 0, 10, 50*time.Millisecond, 10*time.Second)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	// With 50ms spread and 10s mean gaps, a 1s window should capture
	// whole bursts: count distinct "burst onsets" (gap > 1s).
	bursts := 1
	for i := 1; i < len(s); i++ {
		if s[i].At-s[i-1].At > time.Second {
			bursts++
		}
	}
	if bursts < 5 || bursts > 10 {
		t.Fatalf("bursts = %d, want ~10", bursts)
	}
}

func TestNoisyStreamAndDeduplicator(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	clean := UniformStream(r, objects(100), "n", 0, time.Minute)
	noisy := NoisyStream(r, clean, 5, 100*time.Millisecond)
	if len(noisy) <= len(clean) {
		t.Fatalf("noisy stream not longer: %d vs %d", len(noisy), len(clean))
	}
	d := NewDeduplicator(200 * time.Millisecond)
	kept := 0
	for _, o := range noisy {
		if d.Admit(o) {
			kept++
		}
	}
	if kept != len(clean) {
		t.Fatalf("dedup kept %d, want %d", kept, len(clean))
	}
}

func TestDeduplicatorGuardExpiry(t *testing.T) {
	d := NewDeduplicator(time.Second)
	o1 := moods.Observation{Object: "o", Node: "n", At: 0}
	o2 := moods.Observation{Object: "o", Node: "n", At: 500 * time.Millisecond}
	o3 := moods.Observation{Object: "o", Node: "n", At: 2 * time.Second}
	if !d.Admit(o1) {
		t.Error("first read rejected")
	}
	if d.Admit(o2) {
		t.Error("duplicate within guard admitted")
	}
	if !d.Admit(o3) {
		t.Error("read after guard rejected")
	}
	// Different node is always fresh.
	o4 := moods.Observation{Object: "o", Node: "other", At: 2 * time.Second}
	if !d.Admit(o4) {
		t.Error("read at different node rejected")
	}
}

func TestMeanRateEdgeCases(t *testing.T) {
	if MeanRate(nil) != 0 {
		t.Error("empty stream rate != 0")
	}
	same := []moods.Observation{{At: time.Second}, {At: time.Second}}
	if !math.IsInf(MeanRate(same), 1) {
		t.Error("zero-span stream rate not +Inf")
	}
}
