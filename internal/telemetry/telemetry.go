// Package telemetry is the runtime observability layer: sharded
// counters and gauges, bounded-bucket histograms, and a per-query span
// tracer, all hanging off a Registry.
//
// Two properties shape every type here:
//
//   - Determinism. All timestamps come from an injected clock
//     (func() time.Duration), so the same registry code runs on the sim
//     kernel's virtual clock inside experiments/chaos and on the wall
//     clock inside a live trackd. The package itself never reads
//     time.Now, and Snapshot emits in sorted name order, so two
//     deterministic runs produce byte-identical expositions regardless
//     of goroutine scheduling or worker counts.
//
//   - Nil safety. Every handle ((*Registry)(nil), (*Counter)(nil), a
//     nil *Span, ...) is a valid no-op, so instrumented code paths never
//     branch on "is telemetry wired?" and uninstrumented runs pay only a
//     nil check. Counter/Gauge/Histogram updates are allocation-free.
//
// Instrument names are dotted lowercase paths, owner first:
// "transport.calls", "chord.lookup.hops", "core.window.flushes".
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Clock supplies timestamps as offsets from an arbitrary epoch — the
// sim kernel's Now in deterministic runs, time.Since(startup) on a live
// node. A nil Clock reads as zero, which keeps span timestamps and
// latency histograms inert rather than invalid.
type Clock func() time.Duration

// Registry owns a flat namespace of instruments plus one span tracer.
// Instruments are created on first use and live for the registry's
// lifetime; lookups after creation are a read-lock and a map hit, so
// callers on hot paths should still cache the returned handle.
type Registry struct {
	clock Clock

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	tracer *Tracer
}

// DefaultSpanCapacity is the span ring size used by New.
const DefaultSpanCapacity = 512

// New builds a registry on the given clock (nil reads as zero).
func New(clock Clock) *Registry {
	r := &Registry{
		clock:      clock,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	r.tracer = newTracer(r, DefaultSpanCapacity)
	return r
}

// Now reads the registry clock. Zero on a nil registry or clock.
func (r *Registry) Now() time.Duration {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// Counter returns the named counter, creating it on first use. Nil on a
// nil registry — and a nil *Counter is itself a valid no-op handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Tracer returns the registry's span tracer (nil on a nil registry; a
// nil *Tracer is a valid no-op).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// shards is the fan-out for counters and gauges. Like the transport
// stats shards, each slot is padded to its own cache line so concurrent
// writers don't false-share; 16 covers the worker counts the sweep
// runners use.
const shards = 16

type counterShard struct {
	v atomic.Uint64
	_ [56]byte
}

type gaugeShard struct {
	v atomic.Int64
	_ [56]byte
}

// shardHint picks a shard from the caller's stack address — stable
// within a goroutine's lifetime, roughly uniform across goroutines, and
// free of any per-CPU or random state, so it cannot perturb determinism
// (only the per-shard split varies; every read sums all shards).
func shardHint() int {
	var marker byte
	return int(uintptr(unsafe.Pointer(&marker)) >> 10 % shards)
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	shards [shards]counterShard
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d. No-op on a nil counter.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.shards[shardHint()].v.Add(d)
}

// Value sums the shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a sharded signed up/down instrument (e.g. "observations
// currently buffered in open windows").
type Gauge struct {
	shards [shards]gaugeShard
}

// Add moves the gauge by d. No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.shards[shardHint()].v.Add(d)
}

// Set forces the gauge to v. Exact when writers are quiesced (as in the
// single-threaded sim); last-writer-wins against concurrent Adds.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	for i := 1; i < shards; i++ {
		g.shards[i].v.Store(0)
	}
	g.shards[0].v.Store(v)
}

// Value sums the shards.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var total int64
	for i := range g.shards {
		total += g.shards[i].v.Load()
	}
	return total
}
