package telemetry

import "sync/atomic"

// Histogram counts observations into fixed buckets defined by ascending
// inclusive upper bounds, plus an implicit overflow (+inf) bucket. The
// bounds are fixed at creation, so observation is a binary search and
// one atomic add — no allocation, no locks.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	count  atomic.Uint64
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Bounds must be strictly ascending; a later
// lookup with different bounds panics, because two call sites silently
// disagreeing on a bucket layout would corrupt the exposition.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h == nil {
		r.mu.Lock()
		if h = r.histograms[name]; h == nil {
			for i := 1; i < len(bounds); i++ {
				if bounds[i] <= bounds[i-1] {
					r.mu.Unlock()
					panic("telemetry: histogram bounds not ascending: " + name)
				}
			}
			h = &Histogram{
				bounds: append([]int64(nil), bounds...),
				counts: make([]atomic.Uint64, len(bounds)+1),
			}
			r.histograms[name] = h
		}
		r.mu.Unlock()
	}
	if len(h.bounds) != len(bounds) {
		panic("telemetry: histogram bounds mismatch: " + name)
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			panic("telemetry: histogram bounds mismatch: " + name)
		}
	}
	return h
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count is the number of observations so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the running sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HopBuckets is the standard bucket layout for hop-count distributions
// (lookups, locates, IOP walks). Returned fresh so callers can't alias
// a shared slice.
func HopBuckets() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64}
}

// LatencyBuckets is the standard layout for call latencies in
// nanoseconds, from 100µs up to 5s. On the sim kernel's virtual clock
// synchronous calls take zero time and land in the first bucket; the
// layout only spreads out on a live node.
func LatencyBuckets() []int64 {
	return []int64{
		100_000, 1_000_000, 5_000_000, 10_000_000, 50_000_000,
		100_000_000, 500_000_000, 1_000_000_000, 5_000_000_000,
	}
}

// ByteBuckets is the standard layout for message/payload sizes.
func ByteBuckets() []int64 {
	return []int64{64, 256, 1024, 4096, 16384, 65536, 262144}
}

// GroupBuckets is the standard layout for per-flush group counts and
// other small cardinalities.
func GroupBuckets() []int64 {
	return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128}
}
