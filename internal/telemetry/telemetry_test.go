package telemetry

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is a settable test clock.
type manualClock struct{ now time.Duration }

func (c *manualClock) Now() time.Duration { return c.now }

func TestCounterGaugeBasics(t *testing.T) {
	r := New(nil)
	c := r.Counter("a.calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.calls") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("a.buffered")
	g.Add(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.Set(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge after Set = %d, want 11", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	// Every handle chained off a nil registry must be a usable no-op.
	r.Counter("x").Inc()
	r.Gauge("x").Add(1)
	r.Histogram("x", HopBuckets()).Observe(3)
	sp := r.Tracer().Start("locate", "obj")
	sp.Step("n1", "hop")
	sp.Stepf("n2", "hop %d", 2)
	sp.Finish(2, nil)
	if got := r.Tracer().Recent(5); got != nil {
		t.Fatalf("nil tracer Recent = %v, want nil", got)
	}
	if r.Now() != 0 {
		t.Fatal("nil registry clock should read zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 || snap.Spans != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if snap.Text() != "spans 0\n" {
		t.Fatalf("empty exposition = %q", snap.Text())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(nil)
	h := r.Histogram("hops", []int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	pt := snap.Histograms[0]
	// ≤1: {0,1}  ≤2: {2}  ≤4: {3,4}  overflow: {5,100}
	want := []uint64{2, 1, 2, 2}
	if !reflect.DeepEqual(pt.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", pt.Counts, want)
	}
	if pt.Count != 7 || pt.Sum != 115 {
		t.Fatalf("count/sum = %d/%d, want 7/115", pt.Count, pt.Sum)
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := New(nil)
	r.Histogram("h", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bounds mismatch")
		}
	}()
	r.Histogram("h", []int64{1, 3})
}

func TestTracerRingAndForKey(t *testing.T) {
	clk := &manualClock{}
	r := New(clk.Now)
	tr := r.Tracer()
	for i := 0; i < DefaultSpanCapacity+10; i++ {
		clk.now = time.Duration(i) * time.Millisecond
		sp := tr.Start("locate", "obj")
		sp.Step("n1", "gateway")
		sp.Finish(i, nil)
	}
	if got := tr.Total(); got != DefaultSpanCapacity+10 {
		t.Fatalf("total = %d, want %d", got, DefaultSpanCapacity+10)
	}
	recent := tr.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("recent = %d spans, want 3", len(recent))
	}
	// Newest first, and the oldest entries were overwritten.
	if recent[0].Hops != DefaultSpanCapacity+9 || recent[2].Hops != DefaultSpanCapacity+7 {
		t.Fatalf("recent hops = %d,%d — ring order wrong", recent[0].Hops, recent[2].Hops)
	}
	if recent[0].Start != recent[0].End-0 && recent[0].Start == 0 {
		t.Fatalf("span did not take clock timestamps: %+v", recent[0])
	}

	failed := tr.Start("trace", "other")
	failed.Finish(0, errors.New("boom"))
	byKey := tr.ForKey("other", 10)
	if len(byKey) != 1 || byKey[0].Err != "boom" {
		t.Fatalf("ForKey = %+v, want one failed span", byKey)
	}
	if s := byKey[0].String(); !strings.Contains(s, "err=boom") {
		t.Fatalf("String() = %q, want err rendered", s)
	}
}

func TestSnapshotTextDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := New(nil)
		for _, name := range order {
			r.Counter(name).Add(3)
		}
		r.Gauge("g.b").Add(-2)
		r.Gauge("g.a").Add(9)
		r.Histogram("h.x", HopBuckets()).Observe(2)
		return r.Snapshot().Text()
	}
	a := build([]string{"c.z", "c.a", "c.m"})
	b := build([]string{"c.m", "c.z", "c.a"})
	if a != b {
		t.Fatalf("exposition depends on creation order:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "counter c.a 3\n") || strings.Index(a, "c.a") > strings.Index(a, "c.z") {
		t.Fatalf("exposition not sorted:\n%s", a)
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(calls uint64, hop int64) Snapshot {
		r := New(nil)
		r.Counter("t.calls").Add(calls)
		r.Gauge("t.buffered").Add(int64(calls))
		r.Histogram("t.hops", []int64{1, 2}).Observe(hop)
		r.Tracer().Start("locate", "o").Finish(0, nil)
		return r.Snapshot()
	}
	m := mk(3, 1).Merge(mk(5, 100))
	if m.Counters[0].Value != 8 {
		t.Fatalf("merged counter = %d, want 8", m.Counters[0].Value)
	}
	if m.Gauges[0].Value != 8 {
		t.Fatalf("merged gauge = %d, want 8", m.Gauges[0].Value)
	}
	h := m.Histograms[0]
	if h.Count != 2 || h.Sum != 101 || !reflect.DeepEqual(h.Counts, []uint64{1, 0, 1}) {
		t.Fatalf("merged histogram wrong: %+v", h)
	}
	if m.Spans != 2 {
		t.Fatalf("merged spans = %d, want 2", m.Spans)
	}
	// Merging with a zero snapshot preserves values (sweep accumulator
	// starts from Snapshot{}).
	z := Snapshot{}.Merge(m)
	if !reflect.DeepEqual(z, m) {
		t.Fatalf("zero-merge changed snapshot:\n%+v\nvs\n%+v", z, m)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New(nil)
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", HopBuckets())
	tr := r.Tracer()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 10))
				if i%100 == 0 {
					sp := tr.Start("op", "k")
					sp.Step("n", "s")
					sp.Finish(1, nil)
				}
				// Exercise create-on-first-use races too.
				r.Counter("shared").Inc()
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New(nil)
	c := r.Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New(nil)
	h := r.Histogram("bench", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
