package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is the record of one query-shaped operation — a locate, a trace,
// a group-index arrival, a triangle delegation — with the causal hop
// chain it took through the network. Timestamps are registry-clock
// offsets (virtual time in the sim, time-since-startup on a live node).
type Span struct {
	ID    uint64        `json:"id"`
	Op    string        `json:"op"`
	Key   string        `json:"key"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	Hops  int           `json:"hops"`
	Err   string        `json:"err,omitempty"`
	Steps []Step        `json:"steps,omitempty"`

	tracer *Tracer
}

// Step is one hop in a span's causal chain: which node was consulted
// and why.
type Step struct {
	At   time.Duration `json:"at"`
	Node string        `json:"node"`
	Note string        `json:"note"`
}

// Tracer records finished spans into a fixed-size ring buffer: the last
// capacity spans are retrievable, older ones are overwritten. Span IDs
// come from an atomic sequence — strictly ordered in the
// single-threaded sim, merely unique under live concurrency.
type Tracer struct {
	reg *Registry
	seq atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int    // ring slot the next finished span lands in
	total uint64 // spans recorded over the tracer's lifetime
}

func newTracer(reg *Registry, capacity int) *Tracer {
	return &Tracer{reg: reg, ring: make([]Span, 0, capacity)}
}

// Start opens a span. Nil-safe: on a nil tracer it returns a nil span,
// and every span method is a no-op on nil, so instrumented paths never
// branch on whether tracing is wired.
func (t *Tracer) Start(op, key string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		ID:     t.seq.Add(1),
		Op:     op,
		Key:    key,
		Start:  t.reg.Now(),
		tracer: t,
	}
}

// Step appends one hop to the span's chain.
func (s *Span) Step(node, note string) {
	if s == nil {
		return
	}
	s.Steps = append(s.Steps, Step{At: s.tracer.reg.Now(), Node: node, Note: note})
}

// Stepf is Step with a formatted note.
func (s *Span) Stepf(node, format string, args ...any) {
	if s == nil {
		return
	}
	s.Step(node, fmt.Sprintf(format, args...))
}

// Finish closes the span and commits it to the tracer's ring. Hops is
// the operation's reported hop count; err (nil for success) is recorded
// as text so spans stay JSON-encodable and DeepEqual-comparable.
func (s *Span) Finish(hops int, err error) {
	if s == nil {
		return
	}
	s.End = s.tracer.reg.Now()
	s.Hops = hops
	if err != nil {
		s.Err = err.Error()
	}
	t := s.tracer
	done := *s
	done.tracer = nil
	t.mu.Lock()
	if cap(t.ring) > 0 {
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, done)
		} else {
			t.ring[t.next] = done
		}
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Total is the number of spans recorded over the tracer's lifetime
// (including any that have since been overwritten in the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns up to n of the most recently finished spans, newest
// first.
func (t *Tracer) Recent(n int) []Span {
	return t.filter(n, func(Span) bool { return true })
}

// ForKey returns up to n of the most recent spans for the given key
// (object code or group prefix), newest first.
func (t *Tracer) ForKey(key string, n int) []Span {
	return t.filter(n, func(s Span) bool { return s.Key == key })
}

func (t *Tracer) filter(n int, keep func(Span) bool) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for i := len(t.ring) - 1; i >= 0 && len(out) < n; i-- {
		// The ring fills slots 0..cap-1 and then wraps at next, so the
		// newest span sits just before next once full.
		idx := i
		if len(t.ring) == cap(t.ring) {
			idx = (t.next + i) % len(t.ring)
		}
		if keep(t.ring[idx]) {
			out = append(out, t.ring[idx])
		}
	}
	return out
}

// String renders the span as a single line:
//
//	locate key=obj-17 t=[1.2s→1.2s] hops=4 steps=3 ok
func (s Span) String() string {
	status := "ok"
	if s.Err != "" {
		status = "err=" + s.Err
	}
	return fmt.Sprintf("%s key=%s t=[%v→%v] hops=%d steps=%d %s",
		s.Op, s.Key, s.Start, s.End, s.Hops, len(s.Steps), status)
}

// Detail renders the span with one indented line per step.
func (s Span) Detail() string {
	var b strings.Builder
	b.WriteString(s.String())
	for _, st := range s.Steps {
		fmt.Fprintf(&b, "\n  %v %s: %s", st.At, st.Node, st.Note)
	}
	return b.String()
}
