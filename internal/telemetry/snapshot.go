package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// CounterPoint is one counter's value at snapshot time.
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge's value at snapshot time.
type GaugePoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramPoint is one histogram's state at snapshot time. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket.
type HistogramPoint struct {
	Name   string   `json:"name"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Sum    int64    `json:"sum"`
	Count  uint64   `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name
// within each section so that deterministic runs produce DeepEqual- and
// byte-identical snapshots regardless of creation or scheduling order.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
	Spans      uint64           `json:"spans"`
}

// Snapshot captures every instrument. Safe concurrently with updates
// (each value is read atomically; cross-instrument skew is possible on
// a live node, absent in the single-threaded sim). Empty on a nil
// registry.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Counters = append(snap.Counters, CounterPoint{Name: name, Value: r.counters[name].Value()})
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Gauges = append(snap.Gauges, GaugePoint{Name: name, Value: r.gauges[name].Value()})
	}
	names = names[:0]
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.histograms[name]
		pt := HistogramPoint{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			pt.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, pt)
	}
	r.mu.RUnlock()
	snap.Spans = r.tracer.Total()
	return snap
}

// Merge combines two snapshots: counters, gauges, histogram buckets and
// span totals add pointwise by name. Histograms sharing a name must
// share bounds (they do when both sides come from identically
// instrumented runs); a mismatch panics rather than fabricating a
// distribution. Used by the chaos sweep to aggregate per-scenario
// registries in seed order, which is what makes the merged report
// independent of the worker count.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	var out Snapshot
	cv := make(map[string]uint64)
	for _, c := range s.Counters {
		cv[c.Name] += c.Value
	}
	for _, c := range other.Counters {
		cv[c.Name] += c.Value
	}
	for _, name := range sortedKeys(cv) {
		out.Counters = append(out.Counters, CounterPoint{Name: name, Value: cv[name]})
	}
	gv := make(map[string]int64)
	for _, g := range s.Gauges {
		gv[g.Name] += g.Value
	}
	for _, g := range other.Gauges {
		gv[g.Name] += g.Value
	}
	for _, name := range sortedGaugeKeys(gv) {
		out.Gauges = append(out.Gauges, GaugePoint{Name: name, Value: gv[name]})
	}
	hv := make(map[string]HistogramPoint)
	for _, h := range append(append([]HistogramPoint(nil), s.Histograms...), other.Histograms...) {
		prev, ok := hv[h.Name]
		if !ok {
			hv[h.Name] = HistogramPoint{
				Name:   h.Name,
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: append([]uint64(nil), h.Counts...),
				Sum:    h.Sum,
				Count:  h.Count,
			}
			continue
		}
		if len(prev.Bounds) != len(h.Bounds) {
			panic("telemetry: merge bounds mismatch: " + h.Name)
		}
		for i, b := range h.Bounds {
			if prev.Bounds[i] != b {
				panic("telemetry: merge bounds mismatch: " + h.Name)
			}
			prev.Counts[i] += h.Counts[i]
		}
		prev.Counts[len(h.Bounds)] += h.Counts[len(h.Bounds)]
		prev.Sum += h.Sum
		prev.Count += h.Count
		hv[h.Name] = prev
	}
	hnames := make([]string, 0, len(hv))
	for name := range hv {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		out.Histograms = append(out.Histograms, hv[name])
	}
	out.Spans = s.Spans + other.Spans
	return out
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedGaugeKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Text renders the snapshot as a deterministic plain-text exposition,
// one instrument per line, sections and names sorted:
//
//	counter transport.calls 1204
//	gauge core.window.buffered 0
//	histogram chord.lookup.hops count=96 sum=288 le0=1 le1=10 ... inf=0
//	spans 96
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s count=%d sum=%d", h.Name, h.Count, h.Sum)
		for i, bound := range h.Bounds {
			fmt.Fprintf(&b, " le%d=%d", bound, h.Counts[i])
		}
		fmt.Fprintf(&b, " inf=%d\n", h.Counts[len(h.Bounds)])
	}
	fmt.Fprintf(&b, "spans %d\n", s.Spans)
	return b.String()
}
