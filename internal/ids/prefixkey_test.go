package ids

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPrefixKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		id := HashString(string(rune('a' + i%26)))
		id[0] = byte(rng.Intn(256))
		n := rng.Intn(MaxKeyLen + 1)
		p := PrefixOf(id, n)
		k := p.Key()
		if got := k.Prefix(); !got.Equal(p) {
			t.Fatalf("round trip %v/%d: got %v", p.Bits, p.Len, got)
		}
		if k.Len() != n {
			t.Fatalf("Len: got %d want %d", k.Len(), n)
		}
		if k.String() != p.String() {
			t.Fatalf("String: got %q want %q", k.String(), p.String())
		}
		if k2 := KeyOf(id, n); k2 != k {
			t.Fatalf("KeyOf(%v, %d) = %x, Key() = %x", id, n, k2, k)
		}
	}
}

func TestPrefixKeyZeroAndSentinel(t *testing.T) {
	var empty Prefix
	if empty.Key() != 0 {
		t.Fatalf("empty prefix key = %x, want 0", empty.Key())
	}
	if NoPrefixKey.Len() <= MaxKeyLen {
		t.Fatalf("sentinel length %d must be invalid (> %d)", NoPrefixKey.Len(), MaxKeyLen)
	}
	// The sentinel must sort after every valid key.
	deepest := PrefixOf(ID{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, MaxKeyLen)
	if !(deepest.Key() < NoPrefixKey) {
		t.Fatalf("sentinel %x does not sort last (deepest valid key %x)", NoPrefixKey, deepest.Key())
	}
}

// TestPrefixKeyOrderMatchesString is the determinism contract: sorted
// sweeps over packed keys must visit buckets in the same order as the
// old binary-string keys, or reconciliation and dump output would
// change between layouts.
func TestPrefixKeyOrderMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]PrefixKey, 0, 500)
	for i := 0; i < 500; i++ {
		var id ID
		for b := 0; b < 7; b++ {
			id[b] = byte(rng.Intn(256))
		}
		keys = append(keys, KeyOf(id, rng.Intn(MaxKeyLen+1)))
	}
	numeric := append([]PrefixKey(nil), keys...)
	sort.Slice(numeric, func(i, j int) bool { return numeric[i] < numeric[j] })
	lexical := append([]PrefixKey(nil), keys...)
	sort.Slice(lexical, func(i, j int) bool { return lexical[i].String() < lexical[j].String() })
	for i := range numeric {
		if numeric[i] != lexical[i] {
			t.Fatalf("order diverges at %d: numeric %q lexical %q", i, numeric[i], lexical[i])
		}
	}
}

func TestPrefixKeyTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Key() beyond MaxKeyLen did not panic")
		}
	}()
	_ = PrefixOf(HashString("x"), MaxKeyLen+1).Key()
}
