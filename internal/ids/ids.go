// Package ids implements identifier arithmetic for a 160-bit SHA-1
// identifier space arranged as a ring, as used by the Chord protocol and
// by PeerTrack's prefix-based group indexing.
//
// Identifiers are fixed-size 20-byte big-endian values. The package
// provides ring-interval membership tests (the backbone of Chord
// routing), modular arithmetic, prefix extraction and comparison (the
// backbone of group indexing and Data Triangles), and hashing helpers
// that map raw object/node names into the identifier space.
package ids

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// Bits is the width of the identifier space in bits.
const Bits = 160

// Bytes is the width of the identifier space in bytes.
const Bytes = Bits / 8

// ID is a 160-bit identifier in big-endian byte order. The zero value is
// the identifier 0.
type ID [Bytes]byte

// Hash maps an arbitrary byte string into the identifier space using
// SHA-1, exactly as the paper prescribes for both node addresses and raw
// object ids ("we hash the object's raw id using the SHA-1 function").
func Hash(data []byte) ID {
	return ID(sha1.Sum(data))
}

// HashString is Hash for strings.
func HashString(s string) ID {
	return Hash([]byte(s))
}

// FromUint64 returns the identifier whose value is v. Useful for tests
// and for constructing small deterministic rings.
func FromUint64(v uint64) ID {
	var id ID
	for i := 0; i < 8; i++ {
		id[Bytes-1-i] = byte(v >> (8 * i))
	}
	return id
}

// Uint64 returns the low 64 bits of the identifier.
func (id ID) Uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(id[Bytes-8+i])
	}
	return v
}

// ParseHex parses a 40-character hexadecimal string into an ID.
func ParseHex(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("ids: parse %q: %w", s, err)
	}
	if len(b) != Bytes {
		return id, fmt.Errorf("ids: parse %q: want %d bytes, got %d", s, Bytes, len(b))
	}
	copy(id[:], b)
	return id, nil
}

// String returns the full 40-hex-digit representation.
func (id ID) String() string {
	return hex.EncodeToString(id[:])
}

// Short returns an abbreviated hex form (first 8 hex digits) for logs.
func (id ID) Short() string {
	return hex.EncodeToString(id[:4])
}

// Cmp compares two identifiers numerically, returning -1, 0, or +1.
func (id ID) Cmp(other ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether id < other numerically.
func (id ID) Less(other ID) bool { return id.Cmp(other) < 0 }

// Equal reports whether the identifiers are identical.
func (id ID) Equal(other ID) bool { return id == other }

// IsZero reports whether the identifier is the zero identifier.
func (id ID) IsZero() bool { return id == ID{} }

// Add returns (id + other) mod 2^160.
func (id ID) Add(other ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		s := uint16(id[i]) + uint16(other[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns (id - other) mod 2^160.
func (id ID) Sub(other ID) ID {
	var out ID
	var borrow int16
	for i := Bytes - 1; i >= 0; i-- {
		d := int16(id[i]) - int16(other[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// AddPow2 returns (id + 2^k) mod 2^160, 0 <= k < Bits. This computes the
// start of Chord finger k+1: finger[k].start = n + 2^(k-1).
func (id ID) AddPow2(k int) ID {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("ids: AddPow2 exponent %d out of range", k))
	}
	var p ID
	byteIdx := Bytes - 1 - k/8
	p[byteIdx] = 1 << (k % 8)
	return id.Add(p)
}

// Distance returns the clockwise distance from id to other on the ring,
// i.e. (other - id) mod 2^160.
func Distance(id, other ID) ID {
	return other.Sub(id)
}

// Between reports whether x lies in the open ring interval (a, b). The
// interval wraps: if a == b the interval is the whole ring minus {a}.
func Between(x, a, b ID) bool {
	ca := a.Cmp(b)
	switch {
	case ca < 0:
		return a.Cmp(x) < 0 && x.Cmp(b) < 0
	case ca > 0:
		return a.Cmp(x) < 0 || x.Cmp(b) < 0
	default: // a == b: whole ring minus the point a
		return x.Cmp(a) != 0
	}
}

// BetweenRightIncl reports whether x lies in the half-open ring interval
// (a, b]. This is the Chord successor test: key k belongs to node n iff
// k ∈ (predecessor(n), n].
func BetweenRightIncl(x, a, b ID) bool {
	if x.Cmp(b) == 0 {
		return true
	}
	return Between(x, a, b)
}

// BetweenLeftIncl reports whether x lies in the half-open ring interval
// [a, b).
func BetweenLeftIncl(x, a, b ID) bool {
	if x.Cmp(a) == 0 {
		return true
	}
	return Between(x, a, b)
}

// Bit returns bit i of the identifier, where bit 0 is the most
// significant bit. Prefix-based grouping reads bits in this order.
func (id ID) Bit(i int) int {
	if i < 0 || i >= Bits {
		panic(fmt.Sprintf("ids: Bit index %d out of range", i))
	}
	return int(id[i/8]>>(7-i%8)) & 1
}

// LeadingZeros returns the number of leading zero bits.
func (id ID) LeadingZeros() int {
	for i, b := range id {
		if b != 0 {
			return i*8 + bits.LeadingZeros8(b)
		}
	}
	return Bits
}

// CommonPrefixLen returns the length in bits of the longest common
// prefix of two identifiers.
func CommonPrefixLen(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		if x := a[i] ^ b[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	return Bits
}
