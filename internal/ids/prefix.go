package ids

import (
	"fmt"
	"strings"
)

// Prefix is a bit-string prefix of an identifier: the first Len bits of
// ID (remaining bits of ID are zero). Prefixes are the group ids of the
// paper's group indexing algorithm: objects whose hashed ids share the
// first Lp bits belong to the same group, and the group's gateway node
// is the DHT successor of Hash(prefix-string).
//
// The zero Prefix (Len == 0) denotes the empty prefix, which matches
// every identifier.
type Prefix struct {
	Bits ID  // prefix bits, left-aligned; bits past Len are zero
	Len  int // number of significant bits, 0..ids.Bits
}

// PrefixOf extracts the length-n prefix of id.
func PrefixOf(id ID, n int) Prefix {
	if n < 0 || n > Bits {
		panic(fmt.Sprintf("ids: prefix length %d out of range", n))
	}
	var p ID
	full := n / 8
	copy(p[:full], id[:full])
	if rem := n % 8; rem != 0 {
		mask := byte(0xFF << (8 - rem))
		p[full] = id[full] & mask
	}
	return Prefix{Bits: p, Len: n}
}

// ParsePrefix parses a binary string such as "0110" into a Prefix.
func ParsePrefix(s string) (Prefix, error) {
	if len(s) > Bits {
		return Prefix{}, fmt.Errorf("ids: prefix %q longer than %d bits", s, Bits)
	}
	var p Prefix
	p.Len = len(s)
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			p.Bits[i/8] |= 1 << (7 - i%8)
		default:
			return Prefix{}, fmt.Errorf("ids: prefix %q: invalid character %q", s, c)
		}
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error, for tests and
// constants.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the prefix as a binary string, e.g. "0001". This string
// is what gets hashed to choose the group's gateway node, mirroring the
// paper's hash("000") notation.
func (p Prefix) String() string {
	var sb strings.Builder
	sb.Grow(p.Len)
	for i := 0; i < p.Len; i++ {
		if p.Bits.Bit(i) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matches reports whether id starts with prefix p.
func (p Prefix) Matches(id ID) bool {
	return PrefixOf(id, p.Len).Bits == p.Bits
}

// Contains reports whether q extends p (p is a prefix of q). Every
// prefix contains itself.
func (p Prefix) Contains(q Prefix) bool {
	return q.Len >= p.Len && p.Matches(q.Bits)
}

// Parent returns the prefix with the last bit removed. Parent of the
// empty prefix panics.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		panic("ids: Parent of empty prefix")
	}
	return PrefixOf(p.Bits, p.Len-1)
}

// Child returns the prefix extended by one bit (0 or 1). In Data
// Triangle terms these are the two child nodes of a gateway.
func (p Prefix) Child(bit int) Prefix {
	if p.Len >= Bits {
		panic("ids: Child of full-length prefix")
	}
	q := p
	q.Len++
	if bit != 0 {
		q.Bits[p.Len/8] |= 1 << (7 - p.Len%8)
	}
	return q
}

// GatewayID maps a prefix to its gateway key in the identifier space by
// hashing the prefix's binary-string form, as the paper specifies:
// "objects belonging to the group “00” will be indexed in the node
// hash(“00”)".
func (p Prefix) GatewayID() ID {
	return HashString("group:" + p.String())
}

// NextBit returns the bit of id immediately after this prefix, which is
// the bit the Data Triangle parent uses to pick the delegation child.
func (p Prefix) NextBit(id ID) int {
	return id.Bit(p.Len)
}

// Equal reports whether two prefixes are identical.
func (p Prefix) Equal(q Prefix) bool {
	return p.Len == q.Len && p.Bits == q.Bits
}
