package ids

import "testing"

func FuzzParsePrefix(f *testing.F) {
	f.Add("0101")
	f.Add("")
	f.Add("2")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		if p.String() != s {
			t.Fatalf("prefix round trip: %q -> %q", s, p.String())
		}
		if p.Len != len(s) {
			t.Fatalf("prefix length %d for %q", p.Len, s)
		}
	})
}

func FuzzParseHexID(f *testing.F) {
	f.Add("da39a3ee5e6b4b0d3255bfef95601890afd80709")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseHex(s)
		if err != nil {
			return
		}
		if id.String() == s {
			return
		}
		// Hex parsing is case-insensitive; compare after normalising.
		id2, err := ParseHex(id.String())
		if err != nil || id2 != id {
			t.Fatalf("hex id round trip unstable: %q", s)
		}
	})
}

// FuzzRingArithmetic checks Add/Sub inversion and Between partitioning
// on arbitrary byte patterns.
func FuzzRingArithmetic(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, []byte{3})
	f.Fuzz(func(t *testing.T, ab, bb, xb []byte) {
		var a, b, x ID
		copy(a[:], ab)
		copy(b[:], bb)
		copy(x[:], xb)
		if a.Add(b).Sub(b) != a {
			t.Fatal("Add/Sub not inverse")
		}
		if a == b {
			return
		}
		inAB := Between(x, a, b)
		inBA := Between(x, b, a)
		onEnd := x == a || x == b
		n := 0
		for _, v := range []bool{inAB, inBA, onEnd} {
			if v {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("Between partition violated: %v %v %v", inAB, inBA, onEnd)
		}
	})
}
