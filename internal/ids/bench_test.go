package ids

import (
	"fmt"
	"testing"
)

func BenchmarkHash(b *testing.B) {
	data := []byte("urn:epc:id:sgtin:0614141.812345.999999999")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(data)
	}
}

func BenchmarkBetween(b *testing.B) {
	x := HashString("x")
	lo := HashString("lo")
	hi := HashString("hi")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Between(x, lo, hi)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := HashString("x"), HashString("y")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Add(y)
	}
}

func BenchmarkPrefixOf(b *testing.B) {
	id := HashString("object")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PrefixOf(id, 13)
	}
}

func BenchmarkPrefixString(b *testing.B) {
	p := PrefixOf(HashString("object"), 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.String()
	}
}

func BenchmarkGatewayID(b *testing.B) {
	ps := make([]Prefix, 64)
	for i := range ps {
		ps[i] = PrefixOf(HashString(fmt.Sprint(i)), 13)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps[i%64].GatewayID()
	}
}
