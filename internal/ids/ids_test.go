package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 2, 255, 256, 1 << 32, 1<<64 - 1}
	for _, v := range cases {
		if got := FromUint64(v).Uint64(); got != v {
			t.Errorf("FromUint64(%d).Uint64() = %d", v, got)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	a := HashString("urn:epc:id:sgtin:0614141.812345.6789")
	b := HashString("urn:epc:id:sgtin:0614141.812345.6789")
	if a != b {
		t.Fatal("Hash is not deterministic")
	}
	c := HashString("urn:epc:id:sgtin:0614141.812345.6790")
	if a == c {
		t.Fatal("distinct inputs hashed to same id")
	}
}

func TestParseHex(t *testing.T) {
	id := HashString("x")
	got, err := ParseHex(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("ParseHex(String()) = %v, want %v", got, id)
	}
	if _, err := ParseHex("zz"); err == nil {
		t.Error("ParseHex accepted invalid hex")
	}
	if _, err := ParseHex("abcd"); err == nil {
		t.Error("ParseHex accepted short hex")
	}
}

func TestCmp(t *testing.T) {
	a, b := FromUint64(5), FromUint64(9)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
}

func TestAddSub(t *testing.T) {
	a, b := FromUint64(1<<63), FromUint64(1<<63)
	sum := a.Add(b) // 2^64: carries out of low 8 bytes
	if sum.Uint64() != 0 {
		t.Errorf("low bits of 2^63+2^63 = %d, want 0", sum.Uint64())
	}
	if sum[Bytes-9] != 1 {
		t.Errorf("carry byte = %d, want 1", sum[Bytes-9])
	}
	if diff := sum.Sub(b); diff != a {
		t.Errorf("Sub did not invert Add")
	}
	// wraparound: 0 - 1 = 2^160 - 1 (all 0xFF)
	neg := (ID{}).Sub(FromUint64(1))
	for i, by := range neg {
		if by != 0xFF {
			t.Fatalf("byte %d of -1 = %#x, want 0xFF", i, by)
		}
	}
}

func TestAddPow2(t *testing.T) {
	base := FromUint64(10)
	if got := base.AddPow2(0).Uint64(); got != 11 {
		t.Errorf("10 + 2^0 = %d", got)
	}
	if got := base.AddPow2(10).Uint64(); got != 10+1024 {
		t.Errorf("10 + 2^10 = %d", got)
	}
	top := (ID{}).AddPow2(Bits - 1)
	if top[0] != 0x80 {
		t.Errorf("2^159 top byte = %#x, want 0x80", top[0])
	}
	// 2^159 + 2^159 wraps to 0.
	if sum := top.Add(top); !sum.IsZero() {
		t.Errorf("2^159*2 = %v, want 0", sum)
	}
}

func TestBetween(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	tests := []struct {
		x    uint64
		want bool
	}{
		{10, false}, {11, true}, {19, true}, {20, false}, {5, false}, {25, false},
	}
	for _, tc := range tests {
		if got := Between(FromUint64(tc.x), a, b); got != tc.want {
			t.Errorf("Between(%d, 10, 20) = %v", tc.x, got)
		}
	}
	// wrapped interval (20, 10)
	wrapTests := []struct {
		x    uint64
		want bool
	}{
		{25, true}, {5, true}, {15, false}, {20, false}, {10, false}, {0, true},
	}
	for _, tc := range wrapTests {
		if got := Between(FromUint64(tc.x), b, a); got != tc.want {
			t.Errorf("Between(%d, 20, 10) = %v", tc.x, got)
		}
	}
	// degenerate interval (a, a) = whole ring minus a
	if Between(a, a, a) {
		t.Error("Between(a, a, a) should be false")
	}
	if !Between(b, a, a) {
		t.Error("Between(b, a, a) should be true")
	}
}

func TestBetweenInclusive(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !BetweenRightIncl(b, a, b) {
		t.Error("(a,b] must contain b")
	}
	if BetweenRightIncl(a, a, b) {
		t.Error("(a,b] must not contain a")
	}
	if !BetweenLeftIncl(a, a, b) {
		t.Error("[a,b) must contain a")
	}
	if BetweenLeftIncl(b, a, b) {
		t.Error("[a,b) must not contain b")
	}
}

func TestBit(t *testing.T) {
	var id ID
	id[0] = 0x80
	id[Bytes-1] = 0x01
	if id.Bit(0) != 1 {
		t.Error("MSB should be 1")
	}
	if id.Bit(1) != 0 {
		t.Error("bit 1 should be 0")
	}
	if id.Bit(Bits-1) != 1 {
		t.Error("LSB should be 1")
	}
}

func TestLeadingZeros(t *testing.T) {
	if n := (ID{}).LeadingZeros(); n != Bits {
		t.Errorf("zero id has %d leading zeros", n)
	}
	if n := FromUint64(1).LeadingZeros(); n != Bits-1 {
		t.Errorf("id 1 has %d leading zeros, want %d", n, Bits-1)
	}
	var id ID
	id[0] = 0x40
	if n := id.LeadingZeros(); n != 1 {
		t.Errorf("0x40... has %d leading zeros, want 1", n)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := HashString("a")
	if CommonPrefixLen(a, a) != Bits {
		t.Error("identical ids must share all bits")
	}
	var x, y ID
	x[0], y[0] = 0x00, 0x80
	if CommonPrefixLen(x, y) != 0 {
		t.Error("ids differing in MSB share 0 bits")
	}
	x[0], y[0] = 0xF0, 0xF8
	if got := CommonPrefixLen(x, y); got != 4 {
		t.Errorf("CommonPrefixLen = %d, want 4", got)
	}
}

func randomID(r *rand.Rand) ID {
	var id ID
	r.Read(id[:])
	return id
}

// Property: Add and Sub are inverses.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b [Bytes]byte) bool {
		x, y := ID(a), ID(b)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distance(a,b) + Distance(b,a) == 0 (mod 2^160) unless a==b.
func TestQuickDistanceAntisymmetric(t *testing.T) {
	f := func(a, b [Bytes]byte) bool {
		x, y := ID(a), ID(b)
		sum := Distance(x, y).Add(Distance(y, x))
		return sum.IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for distinct a, b, x — exactly one of x ∈ (a,b), x ∈ (b,a),
// x ∈ {a,b} holds.
func TestQuickBetweenPartition(t *testing.T) {
	f := func(a, b, x [Bytes]byte) bool {
		A, B, X := ID(a), ID(b), ID(x)
		if A == B {
			return true // degenerate handled elsewhere
		}
		inAB := Between(X, A, B)
		inBA := Between(X, B, A)
		onEnd := X == A || X == B
		count := 0
		for _, v := range []bool{inAB, inBA, onEnd} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prefix round-trip — PrefixOf(id, n).Matches(id) for all n.
func TestQuickPrefixMatches(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		id := randomID(r)
		n := r.Intn(Bits + 1)
		p := PrefixOf(id, n)
		if !p.Matches(id) {
			t.Fatalf("PrefixOf(id, %d) does not match id", n)
		}
		if p.Len != n {
			t.Fatalf("prefix length %d, want %d", p.Len, n)
		}
	}
}

// Property: parse/String round-trip for prefixes.
func TestQuickPrefixStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		id := randomID(r)
		n := r.Intn(33)
		p := PrefixOf(id, n)
		q, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatal(err)
		}
		if !p.Equal(q) {
			t.Fatalf("round trip failed: %v != %v", p, q)
		}
	}
}

func TestPrefixChildParent(t *testing.T) {
	p := MustParsePrefix("010")
	c0, c1 := p.Child(0), p.Child(1)
	if c0.String() != "0100" || c1.String() != "0101" {
		t.Fatalf("children = %q, %q", c0.String(), c1.String())
	}
	if !c0.Parent().Equal(p) || !c1.Parent().Equal(p) {
		t.Error("Parent(Child(p)) != p")
	}
	if !p.Contains(c0) || !p.Contains(c1) || !p.Contains(p) {
		t.Error("Contains relation wrong")
	}
	if c0.Contains(p) {
		t.Error("child must not contain parent")
	}
}

func TestPrefixNextBit(t *testing.T) {
	id := MustParsePrefix("0101").Bits // 0101 followed by zeros
	p := PrefixOf(id, 2)               // "01"
	if p.NextBit(id) != 0 {
		t.Error("bit after \"01\" in 0101... should be 0")
	}
	p3 := PrefixOf(id, 3) // "010"
	if p3.NextBit(id) != 1 {
		t.Error("bit after \"010\" in 0101... should be 1")
	}
}

func TestPrefixGatewayIDDistinct(t *testing.T) {
	// Prefixes "0" and "00" must map to different gateways even though
	// the underlying bits are identical — the string form disambiguates.
	a := MustParsePrefix("0").GatewayID()
	b := MustParsePrefix("00").GatewayID()
	if a == b {
		t.Error("gateway ids for \"0\" and \"00\" collide")
	}
}

func TestParsePrefixErrors(t *testing.T) {
	if _, err := ParsePrefix("01x"); err == nil {
		t.Error("ParsePrefix accepted invalid character")
	}
}

func TestPrefixOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrefixOf(-1) did not panic")
		}
	}()
	PrefixOf(ID{}, -1)
}
