package ids

import "fmt"

// MaxKeyLen is the longest prefix a PrefixKey can represent. Group
// prefixes are bounded by Lp, and even Scheme 3 (the most aggressive,
// Lp = 2·log2 Nn) needs 56 bits only beyond 2^28 nodes; delegation
// descends a handful of bits further at most. 56 bits of prefix plus an
// 8-bit length fill one machine word.
const MaxKeyLen = 56

// PrefixKey packs a group prefix into a single uint64: the first
// MaxKeyLen prefix bits left-aligned in the high 56 bits, the bit
// length in the low 8 bits. It replaces binary-string map keys in the
// hot stores: hashing and comparing one word instead of a heap string.
//
// Numeric order on PrefixKey equals lexicographic order on the binary
// string form: for keys sharing bits the shorter sorts first (smaller
// low byte), otherwise the first differing bit decides (high bits).
// Sorted sweeps over packed keys therefore visit buckets in exactly the
// order the string-keyed store did, which keeps reconciliation and dump
// output byte-identical.
//
// The zero PrefixKey is the empty prefix. The all-ones value is an
// invalid encoding (length 255) reserved by callers as a sentinel; it
// sorts after every valid key.
type PrefixKey uint64

// NoPrefixKey is the reserved sentinel: not a valid encoding of any
// prefix, numerically after every valid key.
const NoPrefixKey = PrefixKey(^uint64(0))

// Key packs the prefix. It panics beyond MaxKeyLen; callers that extend
// prefixes (delegation, descent) must stop at MaxKeyLen.
//
//lint:hotpath
func (p Prefix) Key() PrefixKey {
	if p.Len > MaxKeyLen {
		panic(fmt.Sprintf("ids: prefix length %d exceeds PrefixKey capacity %d", p.Len, MaxKeyLen))
	}
	var bits uint64
	for i := 0; i < 7; i++ {
		bits = bits<<8 | uint64(p.Bits[i])
	}
	return PrefixKey(bits<<8 | uint64(p.Len))
}

// Len returns the prefix bit length encoded in the key.
//
//lint:hotpath
func (k PrefixKey) Len() int { return int(k & 0xFF) }

// Prefix unpacks the key back into the full Prefix form.
//
//lint:hotpath
func (k PrefixKey) Prefix() Prefix {
	n := k.Len()
	if n > MaxKeyLen {
		panic(fmt.Sprintf("ids: invalid PrefixKey length %d", n))
	}
	var p Prefix
	p.Len = n
	bits := uint64(k) >> 8
	for i := 6; i >= 0; i-- {
		p.Bits[i] = byte(bits)
		bits >>= 8
	}
	return p
}

// String renders the binary-string form without unpacking.
func (k PrefixKey) String() string { return k.Prefix().String() }

// KeyOf extracts the length-n prefix of id directly as a packed key,
// without materializing the intermediate Prefix. This is the capture
// window's grouping step, executed once per observation.
//
//lint:hotpath
func KeyOf(id ID, n int) PrefixKey {
	if n < 0 || n > MaxKeyLen {
		panic(fmt.Sprintf("ids: prefix length %d out of PrefixKey range", n))
	}
	var bits uint64
	for i := 0; i < 7; i++ {
		bits = bits<<8 | uint64(id[i])
	}
	if n < 64-8 {
		bits &= ^uint64(0) << (56 - n)
	}
	return PrefixKey(bits<<8 | uint64(n))
}
