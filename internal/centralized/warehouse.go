// Package centralized implements the baseline the paper compares
// against in Section V-B: all traceability data published to one
// central warehouse, modelled after Wang & Liu's temporal RFID data
// model (VLDB'05) and "built ... in a centralized MySQL database".
//
// The warehouse stores the OBSERVATION(tag, reader_location, time)
// relation in arrival order and answers L and TR exactly. Query cost is
// charged by an explicit storage-engine model: the paper's observation
// that centralized query time is "relevant to the size of the database"
// and grows ultralinearly corresponds to temporal queries that scan the
// relation, with a fixed buffer pool whose hit ratio degrades as the
// relation outgrows it — pages = rows/RowsPerPage, and each page costs
// THit plus, with probability max(0, 1-BufferPages/pages), a TMiss
// penalty. An optional tag index (ablation) shows what a properly
// indexed warehouse would do instead.
package centralized

import (
	"sort"
	"sync"
	"time"

	"peertrack/internal/moods"
)

// CostModel prices a query in virtual time.
type CostModel struct {
	// RowsPerPage is the heap page capacity. Default 100.
	RowsPerPage int
	// BufferPages is the buffer pool size in pages. Default 3000.
	BufferPages int
	// THit is the cost of touching a buffered page. Default 500ns.
	THit time.Duration
	// TMiss is the extra cost of a buffer miss. Default 6µs.
	TMiss time.Duration
	// TRow is the per-row CPU cost of predicate evaluation. Default 40ns.
	TRow time.Duration
	// IndexFanout is the B-tree fanout for the indexed ablation.
	// Default 256.
	IndexFanout int
}

func (c *CostModel) fill() {
	if c.RowsPerPage <= 0 {
		c.RowsPerPage = 100
	}
	if c.BufferPages <= 0 {
		c.BufferPages = 3000
	}
	if c.THit <= 0 {
		c.THit = 500 * time.Nanosecond
	}
	if c.TMiss <= 0 {
		c.TMiss = 6 * time.Microsecond
	}
	if c.TRow <= 0 {
		c.TRow = 40 * time.Nanosecond
	}
	if c.IndexFanout <= 1 {
		c.IndexFanout = 256
	}
}

// pageCost returns the expected cost of touching n pages of a heap of
// total heapPages, under the degrading buffer-hit model.
func (c *CostModel) pageCost(n, heapPages int) time.Duration {
	if n <= 0 {
		return 0
	}
	missRatio := 0.0
	if heapPages > c.BufferPages {
		missRatio = 1 - float64(c.BufferPages)/float64(heapPages)
	}
	per := float64(c.THit) + missRatio*float64(c.TMiss)
	return time.Duration(float64(n) * per)
}

// Warehouse is the central data store.
type Warehouse struct {
	mu    sync.RWMutex
	cost  CostModel
	rows  []moods.Observation      // heap, arrival order
	byTag map[moods.ObjectID][]int // tag index (row ids, time-sorted)
}

// New creates an empty warehouse with the given cost model (zero value
// uses the calibrated defaults).
func New(cost CostModel) *Warehouse {
	cost.fill()
	return &Warehouse{cost: cost, byTag: make(map[moods.ObjectID][]int)}
}

// Insert loads one observation. Loading is not part of the measured
// query path (the paper measures query processing time only).
func (w *Warehouse) Insert(obs moods.Observation) {
	w.mu.Lock()
	defer w.mu.Unlock()
	idx := len(w.rows)
	w.rows = append(w.rows, obs)
	s := w.byTag[obs.Object]
	i := sort.Search(len(s), func(i int) bool { return w.rows[s[i]].At > obs.At })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = idx
	w.byTag[obs.Object] = s
}

// Rows returns the relation size.
func (w *Warehouse) Rows() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.rows)
}

func (w *Warehouse) heapPages() int {
	n := len(w.rows)
	return (n + w.cost.RowsPerPage - 1) / w.cost.RowsPerPage
}

// scanCost prices one full scan of the relation — the execution plan of
// the un-indexed temporal trace query.
func (w *Warehouse) scanCost() time.Duration {
	pages := w.heapPages()
	return w.cost.pageCost(pages, pages) + time.Duration(len(w.rows))*w.cost.TRow
}

// Trace answers TR(o, t1, t2) with a relation scan, returning the path
// and the modelled query time.
func (w *Warehouse) Trace(o moods.ObjectID, t1, t2 time.Duration) (moods.Path, time.Duration) {
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	// Result assembly uses the tag index structure for correctness, but
	// the cost charged is the scan plan's.
	var path moods.Path
	s := w.byTag[o]
	i := sort.Search(len(s), func(i int) bool { return w.rows[s[i]].At >= t1 })
	if i > 0 {
		r := w.rows[s[i-1]]
		path = append(path, moods.Visit{Node: r.Node, Arrived: r.At})
	}
	for ; i < len(s) && w.rows[s[i]].At <= t2; i++ {
		r := w.rows[s[i]]
		path = append(path, moods.Visit{Node: r.Node, Arrived: r.At})
	}
	return path, w.scanCost()
}

// FullTrace answers the evaluation query "Where has object oi been?".
func (w *Warehouse) FullTrace(o moods.ObjectID) (moods.Path, time.Duration) {
	return w.Trace(o, 0, 1<<62)
}

// Locate answers L(o, t) with the same scan plan.
func (w *Warehouse) Locate(o moods.ObjectID, t time.Duration) (moods.NodeName, time.Duration) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := w.byTag[o]
	i := sort.Search(len(s), func(i int) bool { return w.rows[s[i]].At > t })
	cost := w.scanCost()
	if i == 0 {
		return moods.Nowhere, cost
	}
	return w.rows[s[i-1]].Node, cost
}

// IndexedTrace is the ablation: the same query through a B-tree tag
// index (height = log_fanout(rows), one heap page per matching row).
// This is what a well-tuned warehouse would pay — sublinear in relation
// size — included to document that the paper's centralized baseline is
// pessimistic about indexing.
func (w *Warehouse) IndexedTrace(o moods.ObjectID) (moods.Path, time.Duration) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s := w.byTag[o]
	path := make(moods.Path, 0, len(s))
	for _, idx := range s {
		r := w.rows[idx]
		path = append(path, moods.Visit{Node: r.Node, Arrived: r.At})
	}
	height := 1
	for n := len(w.rows); n > w.cost.IndexFanout; n /= w.cost.IndexFanout {
		height++
	}
	pages := height + len(s)
	return path, w.cost.pageCost(pages, w.heapPages()) + time.Duration(len(s))*w.cost.TRow
}
