package centralized

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peertrack/internal/moods"
)

func load(w *Warehouse, h *moods.HistoryStore, objects, visitsEach int, seed int64) []moods.ObjectID {
	r := rand.New(rand.NewSource(seed))
	objs := make([]moods.ObjectID, objects)
	for i := range objs {
		objs[i] = moods.ObjectID(fmt.Sprintf("tag-%d", i))
		at := time.Duration(r.Intn(1000)) * time.Second
		for v := 0; v < visitsEach; v++ {
			obs := moods.Observation{
				Object: objs[i],
				Node:   moods.NodeName(fmt.Sprintf("loc-%d", r.Intn(50))),
				At:     at,
			}
			w.Insert(obs)
			if h != nil {
				h.Record(obs)
			}
			at += time.Duration(1+r.Intn(600)) * time.Second
		}
	}
	return objs
}

func TestTraceMatchesOracle(t *testing.T) {
	w := New(CostModel{})
	h := moods.NewHistoryStore()
	objs := load(w, h, 50, 8, 1)
	for _, o := range objs {
		got, _ := w.FullTrace(o)
		want := h.FullTrace(o)
		if len(got) != len(want) {
			t.Fatalf("%s: trace %v want %v", o, got.Nodes(), want.Nodes())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: trace mismatch at %d", o, i)
			}
		}
	}
}

func TestWindowedTraceMatchesOracle(t *testing.T) {
	w := New(CostModel{})
	h := moods.NewHistoryStore()
	objs := load(w, h, 20, 6, 2)
	r := rand.New(rand.NewSource(3))
	for q := 0; q < 100; q++ {
		o := objs[r.Intn(len(objs))]
		t1 := time.Duration(r.Intn(3000)) * time.Second
		t2 := t1 + time.Duration(r.Intn(2000))*time.Second
		got, _ := w.Trace(o, t1, t2)
		want, _ := h.Trace(o, t1, t2)
		if len(got) != len(want) {
			t.Fatalf("windowed trace mismatch: %v want %v", got.Nodes(), want.Nodes())
		}
	}
}

func TestLocateMatchesOracle(t *testing.T) {
	w := New(CostModel{})
	h := moods.NewHistoryStore()
	objs := load(w, h, 30, 5, 4)
	r := rand.New(rand.NewSource(5))
	for q := 0; q < 200; q++ {
		o := objs[r.Intn(len(objs))]
		at := time.Duration(r.Intn(5000)) * time.Second
		got, _ := w.Locate(o, at)
		want, _ := h.Locate(o, at)
		if got != want {
			t.Fatalf("L(%s, %v) = %q want %q", o, at, got, want)
		}
	}
}

func TestUnknownTag(t *testing.T) {
	w := New(CostModel{})
	load(w, nil, 5, 3, 1)
	path, cost := w.FullTrace("ghost")
	if len(path) != 0 {
		t.Fatal("ghost has a path")
	}
	if cost <= 0 {
		t.Fatal("scan of non-empty relation costs nothing")
	}
	loc, _ := w.Locate("ghost", time.Hour)
	if loc != moods.Nowhere {
		t.Fatalf("ghost located at %q", loc)
	}
}

func TestCostGrowsUltralinearly(t *testing.T) {
	// Query cost per row must increase with relation size once the
	// buffer pool is exceeded: cost(8x rows) > 8x cost(1x rows).
	cm := CostModel{BufferPages: 300}
	small := New(cm)
	load(small, nil, 2000, 10, 7) // 20k rows = 200 pages, fits buffer
	big := New(cm)
	load(big, nil, 20000, 10, 7) // 200k rows = 2000 pages, 85% misses
	_, cSmall := small.FullTrace("tag-0")
	_, cBig := big.FullTrace("tag-0")
	ratioRows := float64(big.Rows()) / float64(small.Rows())
	ratioCost := float64(cBig) / float64(cSmall)
	if ratioCost <= ratioRows {
		t.Fatalf("cost ratio %.1f not ultralinear vs rows ratio %.1f", ratioCost, ratioRows)
	}
}

func TestCostDeterministic(t *testing.T) {
	w := New(CostModel{})
	load(w, nil, 100, 5, 9)
	_, c1 := w.FullTrace("tag-3")
	_, c2 := w.FullTrace("tag-3")
	if c1 != c2 {
		t.Fatalf("cost not deterministic: %v vs %v", c1, c2)
	}
}

func TestIndexedTraceMuchCheaper(t *testing.T) {
	w := New(CostModel{})
	load(w, nil, 30000, 10, 7)
	_, scan := w.FullTrace("tag-42")
	pathIdx, idx := w.IndexedTrace("tag-42")
	if len(pathIdx) != 10 {
		t.Fatalf("indexed path length %d", len(pathIdx))
	}
	if idx*10 >= scan {
		t.Fatalf("indexed plan not ≥10x cheaper: idx=%v scan=%v", idx, scan)
	}
}

func TestCalibrationBand(t *testing.T) {
	// The calibrated model should land centralized trace time in the
	// tens-of-milliseconds band at 2.5M rows (the paper's 512x5000
	// point shows ~130ms) and single-digit ms at 320k rows.
	w := New(CostModel{})
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2_500_000; i++ {
		w.Insert(moods.Observation{
			Object: moods.ObjectID(fmt.Sprintf("t%d", i%100000)),
			Node:   moods.NodeName(fmt.Sprintf("n%d", r.Intn(512))),
			At:     time.Duration(i) * time.Millisecond,
		})
	}
	_, cost := w.FullTrace("t5")
	if cost < 50*time.Millisecond || cost > 500*time.Millisecond {
		t.Fatalf("cost at 2.5M rows = %v, want O(100ms)", cost)
	}
}
