// Package overlay defines the DHT abstraction the traceability layer
// is written against. The paper presents its approach as "built on top
// of the DHT based overlay network" in general and adopts Chord for the
// evaluation; this interface is that genericity made concrete — the
// identical PeerTrack core runs over the Chord implementation
// (internal/chord) and the Kademlia implementation (internal/kademlia),
// and the overlay-comparison ablation measures what the choice costs.
package overlay

import (
	"peertrack/internal/ids"
	"peertrack/internal/transport"
)

// NodeRef identifies an overlay node: its position in the identifier
// space and its transport address.
type NodeRef struct {
	ID   ids.ID
	Addr transport.Addr
}

// IsZero reports whether the reference is unset.
func (r NodeRef) IsZero() bool { return r.Addr == "" }

// Equal reports whether two references denote the same node.
func (r NodeRef) Equal(o NodeRef) bool { return r.Addr == o.Addr && r.ID == o.ID }

// Result is a key-lookup outcome.
type Result struct {
	// Node is the node responsible for the key under the overlay's
	// ownership rule (ring successor for Chord, XOR-closest for
	// Kademlia).
	Node NodeRef
	// Hops is the number of remote routing RPCs spent.
	Hops int
}

// Node is one DHT participant as the traceability layer sees it.
type Node interface {
	// Addr returns the node's transport address.
	Addr() transport.Addr
	// ID returns the node's identifier-space position.
	ID() ids.ID
	// Self returns the node's own reference.
	Self() NodeRef
	// Lookup resolves the node responsible for key.
	Lookup(key ids.ID) (Result, error)
	// Owns reports whether this node is currently responsible for key.
	Owns(key ids.ID) bool
	// NextHop returns the best next routing hop for key from local
	// state only (no RPCs), and whether that hop is already the
	// responsible node. Recursive routed queries build on it.
	NextHop(key ids.ID) (NodeRef, bool)
	// Neighbors returns the nodes that adopt this node's keys when it
	// fails — replication targets (ring successors for Chord, the
	// closest bucket contacts for Kademlia).
	Neighbors() []NodeRef
	// SetAppHandler installs the application-layer message handler.
	SetAppHandler(h transport.Handler)
}
