package chaos

import (
	"reflect"
	"testing"
)

// The paired scenario is the harness's reason to exist: the same crash
// schedule must be answerable at factor 2 and provably lossy at factor
// 1 — otherwise the replicated run's perfect score proves nothing.
func TestReplicationPairDiscriminates(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		pair := RunReplicationPair(ReplicationConfig{Seed: seed})
		if pair.Failed() {
			for _, v := range pair.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			continue
		}
		r, b := pair.Replicated, pair.Baseline
		if r.WindowOK != r.WindowLocates || r.WindowTraceOK != r.WindowTraces {
			t.Errorf("seed %d: replicated run lost reads: locate %d/%d trace %d/%d",
				seed, r.WindowOK, r.WindowLocates, r.WindowTraceOK, r.WindowTraces)
		}
		if b.WindowOK >= b.WindowLocates {
			t.Errorf("seed %d: baseline lost no locates (%d/%d)", seed, b.WindowOK, b.WindowLocates)
		}
		if r.Fallthroughs == 0 {
			t.Errorf("seed %d: no read ever fell through to a replica", seed)
		}
	}
}

// Factor 3 tolerates two simultaneous primary crashes: 2 of any 3
// consecutive ring copies can die and one always survives.
func TestReplicationFactorThreeSurvivesTwoCrashes(t *testing.T) {
	rep := RunReplication(ReplicationConfig{Seed: 5, Factor: 3})
	if rep.Failed() {
		for _, v := range rep.Violations {
			t.Errorf("%s", v)
		}
	}
	if rep.WindowOK != rep.WindowLocates || rep.WindowLocates == 0 {
		t.Errorf("window locates %d/%d", rep.WindowOK, rep.WindowLocates)
	}
	if rep.Fallthroughs == 0 {
		t.Error("no read ever fell through to a replica")
	}
}

func TestReplicationDeterministic(t *testing.T) {
	cfg := ReplicationConfig{Seed: 11}
	a := RunReplication(cfg)
	b := RunReplication(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different reports:\n%s\n%s", a, b)
	}
}

func TestReplicationSweepWorkerIndependent(t *testing.T) {
	cfg := ReplicationConfig{Seed: 20, Nodes: 12, Rounds: 2}
	serial := ReplicationSweep(cfg, 3, 1)
	parallel := ReplicationSweep(cfg, 3, 3)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep differs by worker count:\n%s\n%s", serial, parallel)
	}
	if serial.Failed() {
		for _, p := range serial.Failures {
			for _, v := range p.Violations {
				t.Errorf("seed %d: %s", p.Replicated.Seed, v)
			}
		}
	}
	if serial.Fallthroughs == 0 {
		t.Error("sweep exercised no replica fallthroughs")
	}
}

// The generated-schedule runner must also hold its checkpoints (full
// invariant suite + replica agreement) with replication enabled — the
// repair round at each boundary re-converges mirrors across crashes,
// partitions, and membership changes.
func TestGeneratedSchedulesCleanWithReplication(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, factor := range []int{2, 3} {
			rep := Run(Config{Seed: seed, Replication: factor})
			if rep.Failed() {
				t.Errorf("seed %d factor %d: %s", seed, factor, rep)
			}
		}
	}
}
