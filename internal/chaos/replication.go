package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"peertrack/internal/core"
	"peertrack/internal/invariants"
	"peertrack/internal/moods"
	"peertrack/internal/telemetry"
	"peertrack/internal/transport"
	"peertrack/internal/workload"
)

// This file is the replication-failover harness: a crash scenario
// sharpened to the window the k-successor replication exists for. Each
// round it lets a slice of the workload index and mirror fully, then
// kills factor−1 index primaries and — before any repair, revival, or
// ring re-wiring — reads every object whose state predates the crash
// from a live peer. With factor f, the f copies of any bucket (and of
// any repository) live on f distinct consecutive ring nodes, so f−1
// crashes always leave at least one copy alive; the invariant under
// test is that no such read ever returns a stale or empty answer. A
// second workload slice flushes with the primaries still dead, so
// indexing and mirror traffic race the crash. The paired runner
// (RunReplicationPair) executes the same schedule at factor 1 and
// requires it to LOSE reads in that window — proving the failover path,
// not a lucky placement, is what answered them.

// ReplicationConfig parameterizes one replication-failover scenario.
// The zero value is usable.
type ReplicationConfig struct {
	// Seed drives victim selection and the workload.
	Seed int64
	// Nodes is the network size (default 16).
	Nodes int
	// Factor is the replication factor under test, total copies
	// including the primary (default 2).
	Factor int
	// Rounds is the number of crash rounds (default 3).
	Rounds int
	// Crashes is the number of primaries killed per round (default
	// Factor−1, the largest count that provably leaves every bucket a
	// live copy).
	Crashes int
	// ObjectsPerNode and TraceLen shape the movement workload
	// (defaults 3 and 4).
	ObjectsPerNode int
	TraceLen       int
}

func (c *ReplicationConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Factor <= 0 {
		c.Factor = 2
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Crashes <= 0 {
		c.Crashes = c.Factor - 1
		if c.Crashes <= 0 {
			c.Crashes = 1
		}
	}
	if c.ObjectsPerNode <= 0 {
		c.ObjectsPerNode = 3
	}
	if c.TraceLen <= 0 {
		c.TraceLen = 4
	}
	if c.TraceLen > c.Nodes {
		c.TraceLen = c.Nodes
	}
}

// ReplicationReport is the outcome of one scenario. Determinism
// contract as for Report: identical config → identical report.
type ReplicationReport struct {
	Seed   int64
	Factor int
	// RoundsRun counts crash rounds executed (stops early on failure).
	RoundsRun int
	// WindowLocates / WindowOK count the crash-window reads and how
	// many agreed with the oracle; WindowTraces / WindowTraceOK the
	// same for full traces (which walk the mirrored repositories).
	WindowLocates, WindowOK     int
	WindowTraces, WindowTraceOK int
	// Fallthroughs is the final core.replication.fallthrough_reads
	// counter — how many crash-window answers came from a replica.
	Fallthroughs uint64
	// Violations is empty on success. At factor ≥ 2 every crash-window
	// read must agree with the oracle and every checkpoint must pass
	// the full invariant suite plus replica agreement; at factor 1 the
	// window reads only count (the paired runner asserts they lose).
	Violations []invariants.Violation
	// Telemetry is the scenario's full instrument snapshot.
	Telemetry telemetry.Snapshot
}

// Failed reports whether the scenario violated any invariant.
func (r ReplicationReport) Failed() bool { return len(r.Violations) > 0 }

func (r ReplicationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "repl seed %d factor=%d rounds=%d window locate %d/%d trace %d/%d fallthrough=%d",
		r.Seed, r.Factor, r.RoundsRun, r.WindowOK, r.WindowLocates,
		r.WindowTraceOK, r.WindowTraces, r.Fallthroughs)
	if r.Failed() {
		fmt.Fprintf(&b, " FAIL (%d violations)", len(r.Violations))
		for i, v := range r.Violations {
			if i == 4 {
				fmt.Fprintf(&b, "\n  ... %d more", len(r.Violations)-i)
				break
			}
			fmt.Fprintf(&b, "\n  %s", v)
		}
	}
	return b.String()
}

// RunReplication executes one replication-failover scenario
// deterministically.
func RunReplication(cfg ReplicationConfig) (rep ReplicationReport) {
	cfg.fill()
	rep = ReplicationReport{Seed: cfg.Seed, Factor: cfg.Factor}
	fail := func(format string, args ...any) ReplicationReport {
		rep.Violations = append(rep.Violations, invariants.Violation{
			Invariant: "harness", Detail: fmt.Sprintf(format, args...),
		})
		return rep
	}

	var nw *core.Network
	defer func() {
		if nw != nil {
			rep.Telemetry = nw.Telemetry.Snapshot()
			rep.Fallthroughs = nw.Telemetry.Counter("core.replication.fallthrough_reads").Value()
		}
	}()

	nw, err := core.BuildNetwork(core.NetworkConfig{
		Nodes: cfg.Nodes,
		Seed:  cfg.Seed,
		Peer:  core.Config{ReplicationFactor: cfg.Factor},
	})
	if err != nil {
		return fail("build: %v", err)
	}
	names := make([]moods.NodeName, cfg.Nodes)
	for i := range names {
		names[i] = core.NodeNameFor(i)
	}
	wl, err := workload.PaperSpec{
		Nodes:          names,
		ObjectsPerNode: cfg.ObjectsPerNode,
		MoveFraction:   0.5,
		TraceLen:       cfg.TraceLen,
		Grouped:        true,
		Seed:           cfg.Seed + 2_000_003,
		Spread:         10 * time.Second,
		HopGap:         time.Minute,
	}.Generate()
	if err != nil {
		return fail("workload: %v", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x3e91ac55))
	lastSeen := make(map[moods.ObjectID]moods.NodeName)
	crashed := make(map[transport.Addr]bool)
	feed := func(obs moods.Observation) bool {
		p, ok := nw.PeerByName(obs.Node)
		if !ok || crashed[p.Addr()] {
			return false // a dead node sights nothing
		}
		if lastSeen[obs.Object] == obs.Node {
			return false
		}
		lastSeen[obs.Object] = obs.Node
		if err := nw.ScheduleObservation(obs); err != nil {
			panic(err)
		}
		return true
	}

	n := len(wl.Observations)
	for round := 0; round < cfg.Rounds; round++ {
		rep.RoundsRun = round + 1
		lo, hi := round*n/cfg.Rounds, (round+1)*n/cfg.Rounds
		mid := lo + (hi-lo)/2

		// Phase A: settled traffic — indexed, stitched, and mirrored.
		for _, obs := range wl.Observations[lo:mid] {
			feed(obs)
		}
		nw.Kernel.Run()
		nw.FlushAll()
		nw.FlushAll()
		nw.SyncReplicas()

		// Phase B: kill Crashes index primaries. The ring is NOT
		// repaired: this is the failover window.
		for _, addr := range pickPrimaries(nw, rng, cfg.Crashes) {
			crashed[addr] = true
			nw.Transport.Kill(addr)
		}

		// A second slice flushes with the primaries dead, so indexing
		// and mirror writes race the crash. Objects it touches have
		// legitimately un-indexed movements; the window reads below
		// check only objects whose whole history predates the crash.
		touched := make(map[moods.ObjectID]bool)
		for _, obs := range wl.Observations[mid:hi] {
			if feed(obs) {
				touched[obs.Object] = true
			}
		}
		nw.Kernel.Run()
		nw.FlushAll()

		var asker *core.Peer
		for _, p := range nw.Peers() {
			if !crashed[p.Addr()] {
				asker = p
				break
			}
		}
		now := nw.Kernel.Now()
		for _, obj := range wl.Objects {
			if touched[obj] || lastSeen[obj] == "" {
				continue
			}
			want, _ := nw.Oracle.Locate(obj, now)
			res, err := asker.Locate(obj, now)
			rep.WindowLocates++
			switch {
			case err == nil && res.Node == want:
				rep.WindowOK++
			case cfg.Factor >= 2:
				rep.Violations = append(rep.Violations, invariants.Violation{
					Invariant: "replica-failover", Object: obj,
					Detail: fmt.Sprintf("round %d crash-window locate: got %q err=%v, want %q", round, res.Node, err, want),
				})
			}
			wantPath := nw.Oracle.FullTrace(obj)
			tres, terr := asker.FullTrace(obj)
			rep.WindowTraces++
			switch {
			case terr == nil && tres.Path.Equal(wantPath):
				rep.WindowTraceOK++
			case cfg.Factor >= 2:
				rep.Violations = append(rep.Violations, invariants.Violation{
					Invariant: "replica-failover", Object: obj,
					Detail: fmt.Sprintf("round %d crash-window trace: got %v err=%v, want %v", round, tres.Path.Nodes(), terr, wantPath.Nodes()),
				})
			}
		}
		if cfg.Factor >= 2 && rep.Failed() {
			return rep
		}

		// Heal, converge, and hold the full invariant suite plus
		// replica agreement at the round boundary.
		for addr := range crashed {
			nw.Transport.Revive(addr)
		}
		crashed = make(map[transport.Addr]bool)
		for pass := 0; pass < 64; pass++ {
			total := 0
			for _, p := range nw.Peers() {
				total += p.Buffered()
			}
			if total == 0 {
				break
			}
			nw.FlushAll()
		}
		nw.SyncReplicas()
		opts := invariants.Options{RequireIOPExact: true, RequireIOPBidir: true}
		if vs := invariants.CheckNetwork(nw, opts); len(vs) > 0 {
			rep.Violations = vs
			return rep
		}
		if vs := invariants.CheckReplicaAgreement(nw); len(vs) > 0 {
			rep.Violations = vs
			return rep
		}
	}
	return rep
}

// pickPrimaries selects k distinct live peers currently holding a
// non-empty index bucket — the nodes whose crash takes primary state
// with it — by scenario RNG over the deterministic candidate order.
func pickPrimaries(nw *core.Network, rng *rand.Rand, k int) []transport.Addr {
	var candidates []transport.Addr
	for _, p := range nw.Peers() {
		for _, b := range p.DumpIndex() {
			if len(b.Entries) > 0 {
				candidates = append(candidates, p.Addr())
				break
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	if k > len(candidates)-1 {
		k = len(candidates) - 1 // always leave a live primary to ask from
	}
	if k < 0 {
		k = 0
	}
	perm := rng.Perm(len(candidates))[:k]
	sort.Ints(perm)
	out := make([]transport.Addr, k)
	for i, idx := range perm {
		out[i] = candidates[idx]
	}
	return out
}

// ReplicationPairReport is the paired replicated/baseline verdict for
// one seed.
type ReplicationPairReport struct {
	Replicated ReplicationReport
	Baseline   ReplicationReport
	// Violations is empty when the pair matches the expectation: the
	// replicated run answers every crash-window read (with at least one
	// replica fallthrough) while the factor-1 baseline, under the same
	// crash schedule, provably loses reads.
	Violations []invariants.Violation
}

// Failed reports whether the paired expectation was violated.
func (p ReplicationPairReport) Failed() bool { return len(p.Violations) > 0 }

// RunReplicationPair runs the same crash schedule twice — at
// cfg.Factor and at factor 1 with the identical victim count — and
// asserts the discriminating outcome the harness is checked in for.
func RunReplicationPair(cfg ReplicationConfig) ReplicationPairReport {
	cfg.fill()
	base := cfg
	base.Factor = 1
	base.Crashes = cfg.Crashes // same victims despite the factor drop
	pair := ReplicationPairReport{
		Replicated: RunReplication(cfg),
		Baseline:   RunReplication(base),
	}
	if pair.Replicated.Failed() {
		pair.Violations = append(pair.Violations, invariants.Violation{
			Invariant: "replication-pair",
			Detail:    fmt.Sprintf("seed %d: replicated run (factor %d) failed", cfg.Seed, cfg.Factor),
		})
		pair.Violations = append(pair.Violations, pair.Replicated.Violations...)
	}
	if pair.Replicated.Fallthroughs == 0 {
		pair.Violations = append(pair.Violations, invariants.Violation{
			Invariant: "replication-pair",
			Detail:    fmt.Sprintf("seed %d: no crash-window read used a replica — schedule exercised nothing", cfg.Seed),
		})
	}
	if pair.Baseline.WindowOK == pair.Baseline.WindowLocates && pair.Baseline.WindowTraceOK == pair.Baseline.WindowTraces {
		pair.Violations = append(pair.Violations, invariants.Violation{
			Invariant: "replication-pair",
			Detail: fmt.Sprintf("seed %d: factor-1 baseline lost no crash-window reads (%d/%d locates) — schedule too weak to discriminate",
				cfg.Seed, pair.Baseline.WindowOK, pair.Baseline.WindowLocates),
		})
	}
	return pair
}

// ReplicationSweepReport aggregates paired runs across seeds.
type ReplicationSweepReport struct {
	Scenarios int
	Factor    int
	// Failures holds the failing pairs, ascending by seed.
	Failures []ReplicationPairReport
	// WindowLocates / Fallthroughs accumulate the replicated runs'
	// crash-window reads and replica-served answers.
	WindowLocates int
	Fallthroughs  uint64
	// Telemetry merges the replicated runs' snapshots in seed order
	// (worker-count independent).
	Telemetry telemetry.Snapshot
}

// Failed reports whether any pair in the sweep failed.
func (s ReplicationSweepReport) Failed() bool { return len(s.Failures) > 0 }

func (s ReplicationSweepReport) String() string {
	return fmt.Sprintf("%d replication pairs (factor %d): %d failed, %d window reads, %d replica fallthroughs",
		s.Scenarios, s.Factor, len(s.Failures), s.WindowLocates, s.Fallthroughs)
}

// ReplicationSweep runs n paired scenarios with seeds
// cfg.Seed…cfg.Seed+n−1 across workers. Each scenario owns its whole
// world, so the aggregate is byte-identical at any worker count
// (assembled in seed order).
func ReplicationSweep(cfg ReplicationConfig, n, workers int) ReplicationSweepReport {
	cfg.fill()
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	pairs := make([]ReplicationPairReport, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = cfg.Seed + int64(i)
				pairs[i] = RunReplicationPair(c)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	out := ReplicationSweepReport{Scenarios: n, Factor: cfg.Factor}
	for _, p := range pairs {
		out.WindowLocates += p.Replicated.WindowLocates
		out.Fallthroughs += p.Replicated.Fallthroughs
		out.Telemetry = out.Telemetry.Merge(p.Replicated.Telemetry)
		if p.Failed() {
			out.Failures = append(out.Failures, p)
		}
	}
	sort.Slice(out.Failures, func(i, j int) bool {
		return out.Failures[i].Replicated.Seed < out.Failures[j].Replicated.Seed
	})
	return out
}
