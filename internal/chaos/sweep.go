package chaos

import (
	"fmt"
	"sort"
	"sync"

	"peertrack/internal/telemetry"
)

// SweepReport aggregates a batch of scenario runs.
type SweepReport struct {
	Scenarios int
	Profile   Profile
	// Failures holds the reports of failed scenarios, ascending by seed.
	Failures []Report
	// Aggregate query-accuracy counters across all scenarios.
	LocateTotal, LocateOK int
	TraceTotal, TraceOK   int
	// Telemetry merges every scenario's snapshot in seed order, making
	// the aggregate independent of the worker count.
	Telemetry telemetry.Snapshot
}

// Failed reports whether any scenario in the sweep failed.
func (s SweepReport) Failed() bool { return len(s.Failures) > 0 }

func (s SweepReport) String() string {
	ratio := func(ok, total int) float64 {
		if total == 0 {
			return 1
		}
		return float64(ok) / float64(total)
	}
	return fmt.Sprintf("%d scenarios [%s]: %d failed, locate %.4f (%d/%d), trace %.4f (%d/%d)",
		s.Scenarios, s.Profile, len(s.Failures),
		ratio(s.LocateOK, s.LocateTotal), s.LocateOK, s.LocateTotal,
		ratio(s.TraceOK, s.TraceTotal), s.TraceOK, s.TraceTotal)
}

// Sweep runs n scenarios with seeds cfg.Seed, cfg.Seed+1, …,
// cfg.Seed+n−1 across the given number of workers. Each scenario owns
// its whole world (kernel, transport, network), so parallel execution
// cannot perturb determinism; the aggregate is assembled in seed order.
func Sweep(cfg Config, n, workers int) SweepReport {
	cfg.fill()
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	reports := make([]Report, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = cfg.Seed + int64(i)
				reports[i] = Run(c)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	out := SweepReport{Scenarios: n, Profile: cfg.Profile}
	for _, r := range reports {
		out.LocateTotal += r.LocateTotal
		out.LocateOK += r.LocateOK
		out.TraceTotal += r.TraceTotal
		out.TraceOK += r.TraceOK
		out.Telemetry = out.Telemetry.Merge(r.Telemetry)
		if r.Failed() {
			out.Failures = append(out.Failures, r)
		}
	}
	sort.Slice(out.Failures, func(i, j int) bool { return out.Failures[i].Seed < out.Failures[j].Seed })
	return out
}

// Minimize shrinks a failing schedule while preserving its failure, by
// deterministic re-execution: first truncate to the shortest failing
// prefix of epochs, then greedily delete epochs, then shed workload
// population. The result is the smallest schedule this process can
// reach that still fails under cfg — the thing to stare at when
// debugging. If sched does not fail, it is returned unchanged.
func Minimize(cfg Config, sched Schedule) Schedule {
	cfg.fill()
	fails := func(s Schedule) bool { return RunSchedule(cfg, s).Failed() }
	if !fails(sched) {
		return sched
	}
	cur := sched

	// Shortest failing prefix: the run already stops at the first bad
	// checkpoint, so some prefix must reproduce it.
	for n := 1; n < len(cur.Epochs); n++ {
		cand := Schedule{Spec: cur.Spec, Epochs: append([]Epoch(nil), cur.Epochs[:n]...)}
		if fails(cand) {
			cur = cand
			break
		}
	}

	// Greedy epoch deletion: drop any epoch whose absence keeps the
	// failure alive.
	for i := 0; i < len(cur.Epochs); {
		if len(cur.Epochs) == 1 {
			break
		}
		cand := Schedule{Spec: cur.Spec}
		cand.Epochs = append(cand.Epochs, cur.Epochs[:i]...)
		cand.Epochs = append(cand.Epochs, cur.Epochs[i+1:]...)
		if fails(cand) {
			cur = cand
		} else {
			i++
		}
	}

	// Shed population: halve the object count while the failure holds.
	for cur.Spec.ObjectsPerNode > 1 {
		cand := cur
		cand.Spec.ObjectsPerNode /= 2
		if !fails(cand) {
			break
		}
		cur = cand
	}
	return cur
}
