// Package chaos is a deterministic fault-injection harness for the
// whole PeerTrack stack. From a single integer seed it generates a
// scenario — a workload of object movements plus a schedule of fault
// epochs (node crashes, symmetric partitions, membership churn, random
// message loss) — executes it over the in-memory transport and the
// discrete-event kernel, and checks the global protocol invariants
// (internal/invariants) at every epoch boundary.
//
// Determinism is the contract: the same seed always produces the same
// schedule, the same message interleaving, the same fault pattern, and
// therefore the same verdict. That makes every failure a one-line
// reproduction ("seed 4217 violates iop-exact") instead of a flaky CI
// log, and lets the minimizer (Minimize) shrink a failing schedule to
// its essential epochs by deterministic re-execution.
//
// Two profiles:
//
//   - safe: structural faults only (crashes, partitions, churn) with
//     zero random loss. Every invariant must hold exactly at every
//     checkpoint, and every query must agree with the oracle — any
//     deviation is a bug.
//   - lossy: adds a nonzero per-call drop probability. Lost IOP stitch
//     messages are permanent (they are fire-and-forget by design), so
//     exactness is not required; instead queries after a final
//     loss-free settle must stay within configured degradation bounds.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"peertrack/internal/core"
	"peertrack/internal/moods"
	"peertrack/internal/workload"
)

// Profile selects the strictness regime of a scenario.
type Profile string

const (
	// ProfileSafe runs structural faults at drop rate zero; every
	// invariant (including IOP exactness) must hold.
	ProfileSafe Profile = "safe"
	// ProfileLossy adds random message loss; structural invariants must
	// hold and query accuracy must stay within the configured bounds.
	ProfileLossy Profile = "lossy"
)

// Config parameterizes scenario generation and execution. The zero
// value is usable: every field has a small-but-interesting default.
type Config struct {
	// Seed drives everything: schedule, workload, fault randomness.
	Seed int64
	// Profile is the strictness regime (default safe).
	Profile Profile
	// Nodes is the initial network size (default 12).
	Nodes int
	// ObjectsPerNode seeds the workload population (default 3).
	ObjectsPerNode int
	// TraceLen is the route length of moving objects (default 4).
	TraceLen int
	// Epochs is the number of fault epochs to generate (default 4).
	Epochs int
	// DropRate is the per-call loss probability during lossy epochs
	// (default 0.2; ignored by the safe profile).
	DropRate float64
	// MinLocateOK / MinTraceOK are the lossy profile's degradation
	// floors: the fraction of queries that must agree with the oracle
	// after the final loss-free settle (defaults 0.8 and 0.5).
	MinLocateOK float64
	MinTraceOK  float64
	// Replication is the total number of copies of every gateway bucket
	// and IOP repository, primary included (default 1 = no mirroring).
	// At 2 and above every checkpoint additionally runs a repair round
	// and the replica-agreement invariant.
	Replication int
}

func (c *Config) fill() {
	if c.Profile == "" {
		c.Profile = ProfileSafe
	}
	if c.Nodes <= 0 {
		c.Nodes = 12
	}
	if c.ObjectsPerNode <= 0 {
		c.ObjectsPerNode = 3
	}
	if c.TraceLen <= 0 {
		c.TraceLen = 4
	}
	if c.TraceLen > c.Nodes {
		c.TraceLen = c.Nodes
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.DropRate <= 0 || c.DropRate >= 1 {
		c.DropRate = 0.2
	}
	if c.MinLocateOK <= 0 {
		c.MinLocateOK = 0.8
	}
	if c.MinTraceOK <= 0 {
		c.MinTraceOK = 0.5
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
}

// EpochKind names what a fault epoch does to the network.
type EpochKind string

const (
	// EpochCalm injects no fault: objects move, windows flush.
	EpochCalm EpochKind = "calm"
	// EpochCrash kills Victims nodes for the epoch (revived at its end).
	EpochCrash EpochKind = "crash"
	// EpochPartition splits Victims nodes into a separate partition
	// group for the epoch (healed at its end).
	EpochPartition EpochKind = "partition"
	// EpochGrow adds Victims nodes to the ring (splitting Lp groups).
	EpochGrow EpochKind = "grow"
	// EpochShrink removes Victims nodes (voluntary departures; their
	// repositories leave with them).
	EpochShrink EpochKind = "shrink"
)

// Epoch is one step of a chaos schedule: a fault is injected, a slice
// of the workload plays out, the fault heals, the network settles, the
// invariants are checked, and Queries oracle-verified queries run.
type Epoch struct {
	Kind EpochKind
	// Victims is the number of nodes affected (crashed, partitioned,
	// added, or removed); the runner clamps it to what the current
	// network size allows.
	Victims int
	// Queries is the number of oracle-checked locate/trace probes
	// issued after the epoch settles.
	Queries int
}

// Schedule is a fully generated scenario: the movement workload and the
// fault epochs laid over it.
type Schedule struct {
	Spec   workload.PaperSpec
	Epochs []Epoch
}

// String renders the schedule compactly, e.g.
// "calm q3 | crash(2) q2 | grow(1) q4" — the form printed for failing
// seeds.
func (s Schedule) String() string {
	parts := make([]string, len(s.Epochs))
	for i, e := range s.Epochs {
		if e.Kind == EpochCalm {
			parts[i] = fmt.Sprintf("calm q%d", e.Queries)
		} else {
			parts[i] = fmt.Sprintf("%s(%d) q%d", e.Kind, e.Victims, e.Queries)
		}
	}
	return strings.Join(parts, " | ")
}

// Generate derives a schedule deterministically from cfg.Seed. The
// first epoch is always calm so the initial object placements index
// before faults begin; later epochs draw from all kinds.
func Generate(cfg Config) Schedule {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eedc8a05))

	names := make([]moods.NodeName, cfg.Nodes)
	for i := range names {
		names[i] = core.NodeNameFor(i)
	}
	sched := Schedule{
		Spec: workload.PaperSpec{
			Nodes:          names,
			ObjectsPerNode: cfg.ObjectsPerNode,
			MoveFraction:   0.5,
			TraceLen:       cfg.TraceLen,
			Grouped:        rng.Intn(2) == 0,
			Seed:           cfg.Seed + 1_000_003,
			Spread:         10 * time.Second,
			HopGap:         time.Minute,
		},
	}

	kinds := []EpochKind{
		EpochCrash, EpochCrash, EpochPartition, EpochPartition,
		EpochGrow, EpochShrink, EpochCalm,
	}
	for i := 0; i < cfg.Epochs; i++ {
		ep := Epoch{Kind: EpochCalm}
		if i > 0 {
			ep.Kind = kinds[rng.Intn(len(kinds))]
		}
		switch ep.Kind {
		case EpochCrash, EpochPartition:
			ep.Victims = 1 + rng.Intn(3)
		case EpochGrow:
			ep.Victims = 1 + rng.Intn(2)
		case EpochShrink:
			ep.Victims = 1 + rng.Intn(2)
		}
		ep.Queries = 2 + rng.Intn(3)
		sched.Epochs = append(sched.Epochs, ep)
	}
	return sched
}
