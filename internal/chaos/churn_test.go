package chaos

import (
	"reflect"
	"testing"
)

// TestChurn10xDiscriminates is the tentpole regression: the checked-in
// 10×-churn profile must fail reconvergence under Chord stabilization
// alone and pass it with the gossip membership layer, on every seed.
func TestChurn10xDiscriminates(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		p := RunChurnPair(Churn10x(seed, false))
		if p.Failed() {
			for _, v := range p.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			continue
		}
		if got := p.ChordOnly.RoundsRun; got != 1 {
			t.Errorf("seed %d: chord-only survived %d fault rounds, want failure in round 1", seed, got)
		}
		if mc, budget := p.Gossip.MaxConverge(), Churn10x(seed, true).Budget; mc > budget/2 {
			t.Errorf("seed %d: gossip convergence %d rounds uses more than half the %d-round budget", seed, mc, budget)
		}
	}
}

// TestChurnDeterministic pins the determinism contract: same config →
// byte-identical report, including telemetry and convergence latencies.
func TestChurnDeterministic(t *testing.T) {
	for _, gossipOn := range []bool{false, true} {
		cfg := Churn10x(11, gossipOn)
		a := RunChurn(cfg)
		b := RunChurn(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("gossip=%v: same seed, different reports:\n%s\n%s", gossipOn, a, b)
		}
	}
	a := RunChurn(Churn10x(11, true))
	c := RunChurn(Churn10x(12, true))
	if reflect.DeepEqual(a.Converge, c.Converge) && reflect.DeepEqual(a.Telemetry, c.Telemetry) {
		t.Error("different seeds produced identical gossip reports")
	}
}

// TestChurnSweepWorkerIndependent pins the sweep's aggregation: the
// report must be identical at any worker count.
func TestChurnSweepWorkerIndependent(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 2
	}
	cfg := Churn10x(21, true)
	seq := ChurnSweep(cfg, n, 1)
	par := ChurnSweep(cfg, n, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep differs across worker counts:\n%s\n%s", seq, par)
	}
	if seq.Failed() {
		for _, f := range seq.Failures {
			t.Errorf("pair failed: %v", f.Violations)
		}
	}
	if seq.MaxConverge <= 0 {
		t.Fatalf("sweep recorded no convergence latency: %s", seq)
	}
}

// TestChurnGossipTelemetry sanity-checks that the gossip layer actually
// carried the recovery: deaths were declared and samples repaired
// successor lists.
func TestChurnGossipTelemetry(t *testing.T) {
	rep := RunChurn(Churn10x(31, true))
	if rep.Failed() {
		t.Fatalf("gossip churn failed: %s", rep)
	}
	counters := map[string]uint64{}
	for _, c := range rep.Telemetry.Counters {
		counters[c.Name] = c.Value
	}
	if counters["gossip.deaths"] == 0 {
		t.Error("no gossip deaths declared despite permanent crashes")
	}
	if counters["chord.sample.repairs"] == 0 {
		t.Error("no successor-list repairs from gossip samples")
	}
	if counters["gossip.rounds"] == 0 {
		t.Error("no gossip rounds ran")
	}
}
