package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"peertrack/internal/chord"
	"peertrack/internal/core"
	"peertrack/internal/gossip"
	"peertrack/internal/invariants"
	"peertrack/internal/sim"
	"peertrack/internal/telemetry"
	"peertrack/internal/transport"
)

// This file is the churn-convergence harness: a chord-level scenario
// runner an order of magnitude more violent than the default chaos
// generator. The default schedule crashes 1–3 of ~12 nodes per epoch
// and revives them; here every fault round permanently crashes a
// contiguous ring segment at least as long as the successor list, plus
// random extras, while fresh nodes join — protocol-level churn with no
// static rewiring and no revival, repaired only by the maintenance
// protocol itself.
//
// The segment crash is the scenario from Marinković et al. (PAPERS.md)
// where naive stabilization provably cannot reconverge: the live node
// preceding the dead segment holds a successor list consisting
// entirely of crashed nodes, so Stabilize has no live peer to learn
// from and the node is stranded forever — Chord-only runs fail the
// ring-reconverge invariant deterministically. With the gossip
// membership layer enabled, the stranded node's failure detector
// condemns the dead successors and RepairFromSamples refills the list
// from live gossip samples, so the same schedule reconverges within
// the budget. That paired outcome is the tentpole acceptance check,
// asserted by RunChurnPair.

// ChurnConfig parameterizes one churn-convergence scenario. The zero
// value is usable; defaults give the checked-in churn10x profile shape.
type ChurnConfig struct {
	// Seed drives everything: victim selection, join placement, and
	// (via derived seeds) every gossip agent's RNG.
	Seed int64
	// Nodes is the initial ring size (default 32).
	Nodes int
	// SuccessorListLen is Chord's r for every node (default 3 — small
	// enough that a segment crash can swallow a whole list).
	SuccessorListLen int
	// Rounds is the number of fault rounds (default 5).
	Rounds int
	// SegmentCrash crashes this many ring-contiguous nodes per round
	// (default SuccessorListLen+1, guaranteeing a stranded survivor).
	SegmentCrash int
	// RandomCrash crashes this many additional uniform victims per
	// round (default 2).
	RandomCrash int
	// Joins adds this many fresh nodes per round, joining through the
	// live membership with the real protocol (default 1).
	Joins int
	// Budget is the reconvergence invariant's N: maintenance rounds
	// allowed after the round's faults before the run fails
	// (default 30).
	Budget int
	// WarmupRounds mixes gossip views before the first fault
	// (default 8; ignored without Gossip).
	WarmupRounds int
	// RoundInterval is the virtual time between maintenance rounds —
	// rounds execute as sim-kernel events (default 500ms).
	RoundInterval time.Duration
	// MinLive floors the live population so kills cannot consume the
	// ring (default 2*SuccessorListLen+2).
	MinLive int
	// Gossip enables the membership layer: agents exchange views each
	// maintenance round and feed RepairFromSamples ahead of Stabilize.
	Gossip bool
	// GossipCfg tunes the agents (per-node Seed is derived from Seed).
	GossipCfg gossip.Config
}

func (c *ChurnConfig) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 32
	}
	if c.SuccessorListLen <= 0 {
		c.SuccessorListLen = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
	if c.SegmentCrash <= 0 {
		c.SegmentCrash = c.SuccessorListLen + 1
	}
	if c.RandomCrash < 0 {
		c.RandomCrash = 0
	}
	if c.Joins < 0 {
		c.Joins = 0
	}
	if c.Budget <= 0 {
		c.Budget = 30
	}
	if c.WarmupRounds <= 0 {
		c.WarmupRounds = 8
	}
	if c.RoundInterval <= 0 {
		c.RoundInterval = 500 * time.Millisecond
	}
	if c.MinLive <= 0 {
		c.MinLive = 2*c.SuccessorListLen + 2
	}
}

// Churn10x is the checked-in 10×-churn profile: per fault round it
// crashes a ring segment of r+1 plus 2 random nodes and joins 1 — about
// 20% of the membership per round, an order of magnitude beyond the
// default generator's per-epoch fault rate, with no revival. Chord-only
// runs of this profile must fail and gossip-assisted runs must pass;
// see RunChurnPair.
func Churn10x(seed int64, gossipOn bool) ChurnConfig {
	cfg := ChurnConfig{Seed: seed, Gossip: gossipOn}
	cfg.fill()
	return cfg
}

// ChurnReport is the outcome of one churn scenario. Determinism
// contract as for Report: identical config → identical report.
type ChurnReport struct {
	Seed   int64
	Gossip bool
	// RoundsRun counts fault rounds executed (stops early on failure).
	RoundsRun int
	// Converge holds, per completed fault round, the maintenance rounds
	// the ring needed to reconverge.
	Converge []int
	// JoinsFailed counts joins abandoned because no live bootstrap
	// could route them (possible mid-churn; not a failure).
	JoinsFailed int
	// Violations is empty on success; on failure it holds the
	// ring-reconverge violation plus the residual ring state.
	Violations []invariants.Violation
	// Telemetry is the scenario's full instrument snapshot.
	Telemetry telemetry.Snapshot
}

// Failed reports whether the scenario missed the reconvergence budget.
func (r ChurnReport) Failed() bool { return len(r.Violations) > 0 }

// MaxConverge returns the worst per-round convergence latency (0 when
// no round completed).
func (r ChurnReport) MaxConverge() int {
	max := 0
	for _, c := range r.Converge {
		if c > max {
			max = c
		}
	}
	return max
}

func (r ChurnReport) String() string {
	var b strings.Builder
	mode := "chord-only"
	if r.Gossip {
		mode = "gossip"
	}
	fmt.Fprintf(&b, "churn seed %d [%s] rounds=%d converge=%v joinsFailed=%d",
		r.Seed, mode, r.RoundsRun, r.Converge, r.JoinsFailed)
	if r.Failed() {
		fmt.Fprintf(&b, " FAIL (%d violations)", len(r.Violations))
		for i, v := range r.Violations {
			if i == 4 {
				fmt.Fprintf(&b, "\n  ... %d more", len(r.Violations)-i)
				break
			}
			fmt.Fprintf(&b, "\n  %s", v)
		}
	}
	return b.String()
}

// churnMember pairs a chord node with its (optional) gossip agent.
type churnMember struct {
	node  *chord.Node
	agent *gossip.Agent
}

// churnRunner holds one scenario's mutable state.
type churnRunner struct {
	cfg     ChurnConfig
	kernel  *sim.Kernel
	mem     *transport.Memory
	tel     *telemetry.Registry
	rng     *rand.Rand
	members []*churnMember // live membership, sorted by address
	nextIdx int            // next join's name index
}

// RunChurn executes one churn scenario deterministically.
func RunChurn(cfg ChurnConfig) (rep ChurnReport) {
	cfg.fill()
	rep = ChurnReport{Seed: cfg.Seed, Gossip: cfg.Gossip}
	r := &churnRunner{
		cfg:     cfg,
		kernel:  sim.New(cfg.Seed),
		mem:     transport.NewMemory(cfg.Seed + 1),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x0c84a71a9)),
		nextIdx: cfg.Nodes,
	}
	r.tel = telemetry.New(r.kernel.Now)
	r.mem.SetTelemetry(r.tel)
	defer func() { rep.Telemetry = r.tel.Snapshot() }()

	addrs := make([]transport.Addr, cfg.Nodes)
	for i := range addrs {
		addrs[i] = transport.Addr(core.NodeNameFor(i))
	}
	nodes, err := chord.BuildStaticRing(r.mem, addrs, chord.Config{SuccessorListLen: cfg.SuccessorListLen})
	if err != nil {
		rep.Violations = append(rep.Violations, invariants.Violation{
			Invariant: "harness", Detail: fmt.Sprintf("build ring: %v", err),
		})
		return rep
	}
	for _, n := range nodes {
		n.SetTelemetry(r.tel)
		r.members = append(r.members, r.wire(n))
	}
	r.sortMembers()

	if cfg.Gossip {
		// Mix views and samplers before the first fault: each warmup
		// round is one kernel-driven gossip round per node.
		for w := 0; w < cfg.WarmupRounds; w++ {
			r.step(func(m *churnMember) { m.agent.Round() })
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		rep.RoundsRun = round + 1
		rep.JoinsFailed += r.join()
		r.crashSegment()
		r.crashRandom()

		rounds, vs := invariants.CheckReconvergence(r.liveNodes(), r.maintain, cfg.Budget)
		rep.Converge = append(rep.Converge, rounds)
		if len(vs) > 0 {
			rep.Violations = vs
			return rep
		}
	}
	return rep
}

// wire attaches telemetry and (in gossip mode) a membership agent to a
// node, chaining the agent's RPCs through the node's app handler.
func (r *churnRunner) wire(n *chord.Node) *churnMember {
	m := &churnMember{node: n}
	if !r.cfg.Gossip {
		return m
	}
	gcfg := r.cfg.GossipCfg
	gcfg.Seed = gossip.SeedFor(r.cfg.Seed, n.Addr())
	a := gossip.New(r.mem, n.Self(), gcfg)
	a.SetTelemetry(r.tel)
	n.SetAppHandler(func(from transport.Addr, req any) (any, error) {
		if resp, handled, err := a.HandleRPC(from, req); handled {
			return resp, err
		}
		return nil, fmt.Errorf("chaos: unknown request %T", req)
	})
	a.SeedView(n.Successors())
	m.agent = a
	return m
}

// sortMembers keeps the maintenance order deterministic: by address.
func (r *churnRunner) sortMembers() {
	sort.Slice(r.members, func(i, j int) bool {
		return r.members[i].node.Addr() < r.members[j].node.Addr()
	})
}

// liveNodes projects the live membership for the invariant checker.
func (r *churnRunner) liveNodes() []*chord.Node {
	out := make([]*chord.Node, len(r.members))
	for i, m := range r.members {
		out[i] = m.node
	}
	return out
}

// step runs fn over the live membership in address order, inside one
// sim-kernel event one RoundInterval ahead — maintenance is scheduled
// wall-clock-free on virtual time like every other periodic process.
func (r *churnRunner) step(fn func(*churnMember)) {
	r.kernel.Schedule(r.cfg.RoundInterval, func() {
		for _, m := range r.members {
			fn(m)
		}
	})
	r.kernel.Run()
}

// maintain is one protocol maintenance round, the unit the
// reconvergence budget counts: per live node (address order), a gossip
// round and sample-driven successor repair (gossip mode), then the
// Chord trio — predecessor check, stabilize, one finger fix. A
// stabilize that finds its whole successor list dead reports every
// entry to the failure detector, which is what lets the next round's
// repair drop the condemned entries and escape the stranded state.
func (r *churnRunner) maintain() {
	r.step(func(m *churnMember) {
		if m.agent != nil {
			m.agent.Round()
			m.node.RepairFromSamples(m.agent.Samples(), m.agent.IsDead)
		}
		m.node.CheckPredecessor()
		if err := m.node.Stabilize(); err != nil && m.agent != nil {
			for _, s := range m.node.Successors() {
				if !s.Equal(m.node.Self()) {
					m.agent.Suspect(s)
				}
			}
		}
		m.node.FixFingers()
	})
}

// join adds cfg.Joins fresh nodes through the live membership using the
// real join protocol, trying each live bootstrap in address order.
// Returns the number of joins abandoned (no bootstrap could route).
func (r *churnRunner) join() int {
	failed := 0
	for j := 0; j < r.cfg.Joins; j++ {
		addr := transport.Addr(core.NodeNameFor(r.nextIdx))
		r.nextIdx++
		n, err := chord.New(r.mem, addr, chord.Config{SuccessorListLen: r.cfg.SuccessorListLen})
		if err != nil {
			failed++
			continue
		}
		n.SetTelemetry(r.tel)
		m := r.wire(n)
		joined := false
		for _, b := range r.members {
			if err := n.Join(b.node.Self()); err == nil {
				joined = true
				break
			}
		}
		if !joined {
			r.mem.Unregister(addr)
			failed++
			continue
		}
		if m.agent != nil {
			m.agent.SeedView(n.Successors())
		}
		r.members = append(r.members, m)
		r.sortMembers()
	}
	return failed
}

// crashSegment permanently crashes a contiguous run of SegmentCrash
// nodes in ring order, chosen by the scenario RNG — the stabilization
// killer: the survivor immediately before the segment is left with a
// successor list whose live entries all died.
func (r *churnRunner) crashSegment() {
	k := r.crashBudget(r.cfg.SegmentCrash)
	if k <= 0 {
		return
	}
	ring := append([]*churnMember(nil), r.members...)
	sort.Slice(ring, func(i, j int) bool {
		return ring[i].node.ID().Less(ring[j].node.ID())
	})
	start := r.rng.Intn(len(ring))
	for i := 0; i < k; i++ {
		r.kill(ring[(start+1+i)%len(ring)])
	}
}

// crashRandom crashes RandomCrash additional uniform victims.
func (r *churnRunner) crashRandom() {
	k := r.crashBudget(r.cfg.RandomCrash)
	if k <= 0 {
		return
	}
	perm := r.rng.Perm(len(r.members))[:k]
	sort.Ints(perm)
	victims := make([]*churnMember, k)
	for i, idx := range perm {
		victims[i] = r.members[idx]
	}
	for _, v := range victims {
		r.kill(v)
	}
}

// crashBudget clamps a kill count so the live population never drops
// below MinLive.
func (r *churnRunner) crashBudget(want int) int {
	return clamp(want, len(r.members)-r.cfg.MinLive)
}

// kill crashes one member: its transport endpoint dies mid-protocol (no
// leave, no rewiring, no revival) and it drops out of the maintenance
// schedule and the invariant projection.
func (r *churnRunner) kill(victim *churnMember) {
	r.mem.Kill(victim.node.Addr())
	if victim.agent != nil {
		victim.agent.Stop()
	}
	for i, m := range r.members {
		if m == victim {
			r.members = append(r.members[:i], r.members[i+1:]...)
			break
		}
	}
}

// ChurnPairReport is the paired chord-only/gossip verdict for one seed.
type ChurnPairReport struct {
	ChordOnly ChurnReport
	Gossip    ChurnReport
	// Violations is empty when the pair matches the expectation:
	// chord-only FAILS reconvergence and gossip PASSES it.
	Violations []invariants.Violation
}

// Failed reports whether the paired expectation was violated.
func (p ChurnPairReport) Failed() bool { return len(p.Violations) > 0 }

// RunChurnPair runs the same churn schedule twice — Chord-only and
// gossip-assisted — and asserts the discriminating outcome the 10×
// profile is checked in for: stabilization alone must miss the
// reconvergence budget, and the gossip membership layer must meet it.
func RunChurnPair(cfg ChurnConfig) ChurnPairReport {
	cfg.fill()
	chordCfg, gossipCfg := cfg, cfg
	chordCfg.Gossip = false
	gossipCfg.Gossip = true
	pair := ChurnPairReport{
		ChordOnly: RunChurn(chordCfg),
		Gossip:    RunChurn(gossipCfg),
	}
	if !pair.ChordOnly.Failed() {
		pair.Violations = append(pair.Violations, invariants.Violation{
			Invariant: "churn-pair",
			Detail: fmt.Sprintf("seed %d: chord-only run unexpectedly reconverged (converge=%v) — churn too weak to discriminate",
				cfg.Seed, pair.ChordOnly.Converge),
		})
	}
	if pair.Gossip.Failed() {
		pair.Violations = append(pair.Violations, invariants.Violation{
			Invariant: "churn-pair",
			Detail:    fmt.Sprintf("seed %d: gossip-assisted run failed reconvergence", cfg.Seed),
		})
		pair.Violations = append(pair.Violations, pair.Gossip.Violations...)
	}
	return pair
}

// ChurnSweepReport aggregates paired churn runs across seeds.
type ChurnSweepReport struct {
	Scenarios int
	// Failures holds the failing pairs, ascending by seed.
	Failures []ChurnPairReport
	// MaxConverge is the worst gossip-assisted convergence latency seen
	// across all seeds — the value the perf ledger pins.
	MaxConverge int
	// Telemetry merges the gossip-assisted runs' snapshots in seed
	// order (worker-count independent).
	Telemetry telemetry.Snapshot
}

// Failed reports whether any pair in the sweep failed.
func (s ChurnSweepReport) Failed() bool { return len(s.Failures) > 0 }

func (s ChurnSweepReport) String() string {
	return fmt.Sprintf("%d churn pairs: %d failed, max gossip convergence %d rounds",
		s.Scenarios, len(s.Failures), s.MaxConverge)
}

// ChurnSweep runs n paired scenarios with seeds cfg.Seed…cfg.Seed+n−1
// across workers. Each scenario owns its whole world, so the aggregate
// is byte-identical at any worker count (assembled in seed order).
func ChurnSweep(cfg ChurnConfig, n, workers int) ChurnSweepReport {
	cfg.fill()
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	pairs := make([]ChurnPairReport, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cfg
				c.Seed = cfg.Seed + int64(i)
				pairs[i] = RunChurnPair(c)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	out := ChurnSweepReport{Scenarios: n}
	for _, p := range pairs {
		if mc := p.Gossip.MaxConverge(); mc > out.MaxConverge {
			out.MaxConverge = mc
		}
		out.Telemetry = out.Telemetry.Merge(p.Gossip.Telemetry)
		if p.Failed() {
			out.Failures = append(out.Failures, p)
		}
	}
	sort.Slice(out.Failures, func(i, j int) bool {
		return out.Failures[i].ChordOnly.Seed < out.Failures[j].ChordOnly.Seed
	})
	return out
}
