package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"peertrack/internal/core"
	"peertrack/internal/invariants"
	"peertrack/internal/moods"
	"peertrack/internal/telemetry"
	"peertrack/internal/workload"
)

// Report is the outcome of one scenario run. Two runs of the same
// (Config, Schedule) produce identical Reports — that equality is
// itself asserted by the harness tests.
type Report struct {
	Seed     int64
	Profile  Profile
	Schedule string
	// EpochsRun counts epochs executed before the run ended (early on
	// the first invariant violation).
	EpochsRun int
	// Violations is empty on success. On failure it holds the invariant
	// violations from the first failing checkpoint (or query/bound
	// failures).
	Violations []invariants.Violation
	// Query accuracy counters, accumulated across all epochs.
	LocateTotal, LocateOK int
	TraceTotal, TraceOK   int
	// Telemetry is the scenario network's full instrument snapshot at
	// the moment the run ended (zero if the network never built).
	Telemetry telemetry.Snapshot
}

// Failed reports whether the scenario violated any invariant or bound.
func (r Report) Failed() bool { return len(r.Violations) > 0 }

// LocateRatio returns the fraction of locate queries agreeing with the
// oracle (1 when none ran).
func (r Report) LocateRatio() float64 {
	if r.LocateTotal == 0 {
		return 1
	}
	return float64(r.LocateOK) / float64(r.LocateTotal)
}

// TraceRatio returns the fraction of trace queries agreeing with the
// oracle (1 when none ran).
func (r Report) TraceRatio() float64 {
	if r.TraceTotal == 0 {
		return 1
	}
	return float64(r.TraceOK) / float64(r.TraceTotal)
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d [%s] epochs=%d locate %d/%d trace %d/%d",
		r.Seed, r.Profile, r.EpochsRun, r.LocateOK, r.LocateTotal, r.TraceOK, r.TraceTotal)
	if r.Failed() {
		fmt.Fprintf(&b, " FAIL (%d violations)", len(r.Violations))
		for i, v := range r.Violations {
			if i == 4 {
				fmt.Fprintf(&b, "\n  ... %d more", len(r.Violations)-i)
				break
			}
			fmt.Fprintf(&b, "\n  %s", v)
		}
		fmt.Fprintf(&b, "\n  schedule: %s", r.Schedule)
	}
	return b.String()
}

// Run generates the schedule for cfg and executes it.
func Run(cfg Config) Report {
	cfg.fill()
	return RunSchedule(cfg, Generate(cfg))
}

// runner holds one scenario's mutable execution state.
type runner struct {
	cfg   Config
	nw    *core.Network
	rng   *rand.Rand
	wl    workload.Result
	rep   *Report
	crash map[moods.NodeName]bool
	// lastSeen is each object's most recently *recorded* location; a
	// re-sighting at the same node is suppressed (MOODS semantics: the
	// object did not move, so L and TR are unchanged) so that
	// fault-induced skips never fabricate consecutive same-node visits.
	lastSeen map[moods.ObjectID]moods.NodeName
	// skipIOP collects objects whose histories include a departed node;
	// the departed repository took part of their chains with it, so
	// exact IOP reconstruction is structurally impossible for them.
	skipIOP map[moods.ObjectID]bool
}

// RunSchedule executes one scenario deterministically: per epoch it
// injects the scheduled fault, plays the epoch's slice of the workload
// with the fault active (including window flush pulses, so indexing
// messages really race the fault), heals, settles all buffered windows
// at drop rate zero, checks every network invariant, and issues
// oracle-verified queries. The run stops at the first violating
// checkpoint.
func RunSchedule(cfg Config, sched Schedule) (rep Report) {
	cfg.fill()
	rep = Report{Seed: cfg.Seed, Profile: cfg.Profile, Schedule: sched.String()}
	harnessFail := func(format string, args ...any) Report {
		rep.Violations = append(rep.Violations, invariants.Violation{
			Invariant: "harness", Detail: fmt.Sprintf(format, args...),
		})
		return rep
	}

	// Snapshot the scenario's instruments on every return path, so a run
	// that stops early (first violation) still reports its telemetry.
	var nw *core.Network
	defer func() {
		if nw != nil {
			rep.Telemetry = nw.Telemetry.Snapshot()
		}
	}()

	nw, err := core.BuildNetwork(core.NetworkConfig{
		Nodes: cfg.Nodes,
		Seed:  cfg.Seed,
		Peer:  core.Config{ReplicationFactor: cfg.Replication},
	})
	if err != nil {
		return harnessFail("build: %v", err)
	}
	wl, err := sched.Spec.Generate()
	if err != nil {
		return harnessFail("workload: %v", err)
	}
	r := &runner{
		cfg:      cfg,
		nw:       nw,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0xc4a05f11)),
		wl:       wl,
		rep:      &rep,
		crash:    make(map[moods.NodeName]bool),
		lastSeen: make(map[moods.ObjectID]moods.NodeName),
		skipIOP:  make(map[moods.ObjectID]bool),
	}

	for ei, ep := range sched.Epochs {
		rep.EpochsRun = ei + 1
		if msg := r.injectFault(ep); msg != "" {
			return harnessFail("%s", msg)
		}
		if cfg.Profile == ProfileLossy {
			nw.Transport.SetDropRate(cfg.DropRate)
		}

		// Play this epoch's slice of the movement workload with the
		// fault active, then pulse the windows so flush traffic races it.
		n := len(wl.Observations)
		e := len(sched.Epochs)
		for _, obs := range wl.Observations[ei*n/e : (ei+1)*n/e] {
			r.feed(obs)
		}
		nw.Kernel.Run()
		nw.FlushAll()
		nw.FlushAll()

		// Heal everything and let rebuffered windows drain loss-free.
		r.heal()
		if !r.settle() {
			return harnessFail("windows still buffered after settle (epoch %d)", ei)
		}

		// Checkpoint: every structural invariant must hold in both
		// profiles; exactness only where no history departed. With
		// replication on, a repair round first re-converges the mirrors
		// (it is protocol activity, like the flush pulses above), then
		// every primary must agree byte-for-byte with its k−1 copies.
		nw.SyncReplicas()
		opts := invariants.Options{SkipIOP: r.skipIOP}
		if cfg.Profile == ProfileSafe {
			opts.RequireIOPExact = true
			opts.RequireIOPBidir = true
		}
		if vs := invariants.CheckNetwork(nw, opts); len(vs) > 0 {
			rep.Violations = vs
			return rep
		}
		if vs := invariants.CheckReplicaAgreement(nw); len(vs) > 0 {
			rep.Violations = vs
			return rep
		}

		r.queries(ep)
		if cfg.Profile == ProfileSafe && rep.Failed() {
			return rep
		}
	}

	if cfg.Profile == ProfileLossy {
		if rep.LocateRatio() < cfg.MinLocateOK {
			rep.Violations = append(rep.Violations, invariants.Violation{
				Invariant: "query-bounds",
				Detail: fmt.Sprintf("locate accuracy %.3f below floor %.3f (%d/%d)",
					rep.LocateRatio(), cfg.MinLocateOK, rep.LocateOK, rep.LocateTotal),
			})
		}
		if rep.TraceRatio() < cfg.MinTraceOK {
			rep.Violations = append(rep.Violations, invariants.Violation{
				Invariant: "query-bounds",
				Detail: fmt.Sprintf("trace accuracy %.3f below floor %.3f (%d/%d)",
					rep.TraceRatio(), cfg.MinTraceOK, rep.TraceOK, rep.TraceTotal),
			})
		}
	}
	return rep
}

// injectFault applies the epoch's fault to the network; membership
// changes run immediately (on the healed network), unreachability
// faults stay active until heal(). Returns a harness error message, or
// "" on success.
func (r *runner) injectFault(ep Epoch) string {
	nw := r.nw
	switch ep.Kind {
	case EpochCrash:
		k := clamp(ep.Victims, nw.Size()/3)
		perm := r.rng.Perm(nw.Size())
		for i := 0; i < k; i++ {
			p := nw.Peers()[perm[i]]
			r.crash[p.Name()] = true
			nw.Transport.Kill(p.Addr())
		}
	case EpochPartition:
		k := clamp(ep.Victims, nw.Size()/2)
		perm := r.rng.Perm(nw.Size())
		for i := 0; i < k; i++ {
			nw.Transport.Partition(nw.Peers()[perm[i]].Addr(), 1)
		}
	case EpochGrow:
		k := clamp(ep.Victims, r.cfg.Nodes+4-nw.Size())
		if k > 0 {
			if _, _, err := nw.Grow(k); err != nil {
				return fmt.Sprintf("grow(%d): %v", k, err)
			}
		}
	case EpochShrink:
		k := clamp(ep.Victims, nw.Size()-4)
		if k > 0 {
			// The leavers' repositories depart with them; every object
			// they ever observed loses part of its chain.
			for _, l := range nw.Peers()[nw.Size()-k:] {
				for obj := range l.DumpVisits() {
					r.skipIOP[obj] = true
				}
			}
			if _, _, err := nw.Shrink(k); err != nil {
				return fmt.Sprintf("shrink(%d): %v", k, err)
			}
		}
	}
	return ""
}

// feed schedules one workload observation unless its node is crashed or
// departed (the sighting never happens — neither in the network nor in
// the oracle) or it would re-sight the object at its current location.
func (r *runner) feed(obs moods.Observation) {
	if r.crash[obs.Node] {
		return
	}
	if _, ok := r.nw.PeerByName(obs.Node); !ok {
		return
	}
	if r.lastSeen[obs.Object] == obs.Node {
		return
	}
	r.lastSeen[obs.Object] = obs.Node
	// The node exists and is registered, so this cannot fail.
	if err := r.nw.ScheduleObservation(obs); err != nil {
		panic(err)
	}
}

// heal revives crashed nodes, removes all partitions, and turns random
// loss off.
func (r *runner) heal() {
	for name := range r.crash {
		if p, ok := r.nw.PeerByName(name); ok {
			r.nw.Transport.Revive(p.Addr())
		}
	}
	r.crash = make(map[moods.NodeName]bool)
	r.nw.Transport.HealPartitions()
	r.nw.Transport.SetDropRate(0)
}

// settle pumps window flushes until no peer holds buffered
// observations. On the healed network a flush either delivers or the
// group re-buffers, so a handful of passes always suffices; the bound
// only guards against a regression that wedges a window forever.
func (r *runner) settle() bool {
	for pass := 0; pass < 64; pass++ {
		total := 0
		for _, p := range r.nw.Peers() {
			total += p.Buffered()
		}
		if total == 0 {
			return true
		}
		r.nw.FlushAll()
	}
	return false
}

// queries issues oracle-verified probes from random peers: a
// present-time locate for any object, plus a past-time locate and a
// full trace for objects with intact histories. In the safe profile any
// disagreement with the oracle is a violation; both profiles accumulate
// accuracy counters.
func (r *runner) queries(ep Epoch) {
	nw := r.nw
	now := nw.Kernel.Now()
	for q := 0; q < ep.Queries; q++ {
		obj := r.wl.Objects[r.rng.Intn(len(r.wl.Objects))]
		from := nw.Peers()[r.rng.Intn(nw.Size())]

		r.scoreLocate(from, obj, now)
		if r.skipIOP[obj] {
			continue
		}
		if now > 0 {
			r.scoreLocate(from, obj, time.Duration(r.rng.Int63n(int64(now)+1)))
		}
		r.scoreTrace(from, obj)
	}
}

func (r *runner) scoreLocate(from *core.Peer, obj moods.ObjectID, t time.Duration) {
	rep := r.rep
	want, _ := r.nw.Oracle.Locate(obj, t)
	got := moods.Nowhere
	res, err := from.Locate(obj, t)
	switch {
	case err == nil:
		got = res.Node
	case !errors.Is(err, core.ErrNotTracked):
		// Transport or walk failure: counts as a miss below.
		got = moods.NodeName("error:" + err.Error())
	}
	rep.LocateTotal++
	if got == want {
		rep.LocateOK++
	} else if r.cfg.Profile == ProfileSafe {
		rep.Violations = append(rep.Violations, invariants.Violation{
			Invariant: "query-locate", Object: obj,
			Detail: fmt.Sprintf("from %s at t=%s: got %q, want %q", from.Name(), t, got, want),
		})
	}
}

func (r *runner) scoreTrace(from *core.Peer, obj moods.ObjectID) {
	rep := r.rep
	want := r.nw.Oracle.FullTrace(obj)
	res, err := from.FullTrace(obj)
	ok := false
	switch {
	case err == nil:
		ok = res.Path.Equal(want)
	case errors.Is(err, core.ErrNotTracked):
		ok = len(want) == 0
	}
	rep.TraceTotal++
	if ok {
		rep.TraceOK++
	} else if r.cfg.Profile == ProfileSafe {
		rep.Violations = append(rep.Violations, invariants.Violation{
			Invariant: "query-trace", Object: obj,
			Detail: fmt.Sprintf("from %s: got %v (err=%v), want %v", from.Name(), res.Path.Nodes(), err, want.Nodes()),
		})
	}
}

// clamp bounds a victim count to [0, max] (never negative).
func clamp(v, max int) int {
	if max < 0 {
		max = 0
	}
	if v > max {
		return max
	}
	if v < 0 {
		return 0
	}
	return v
}
