package chaos

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"peertrack/internal/invariants"
	"peertrack/internal/transport"
)

// The resilience accounting invariants must hold under arbitrary
// seeded fault schedules: kills, revives, and lossy epochs drive the
// wrapper through retries, breaker opens, half-open probes, and
// recoveries, and after every epoch the wrapper's counters must
// decompose exactly into the inner transport's drop/blocked accounting
// — retried calls are separate inner calls, never double-counted drops.
func TestResilienceInvariantsUnderFaultSchedule(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nodes = 8
			mem := transport.NewMemory(seed + 100)
			addrs := make([]transport.Addr, nodes)
			for i := range addrs {
				addrs[i] = transport.Addr(fmt.Sprintf("n%d", i))
				mem.Register(addrs[i], func(from transport.Addr, req any) (any, error) {
					return req, nil
				})
			}

			// Virtual clock: epochs advance it so breaker cooldowns
			// elapse; backoff sleeps advance it so call budgets bind.
			var now time.Duration
			r := transport.NewResilient(mem,
				func() time.Duration { return now },
				func(d time.Duration) { now += d },
				transport.ResilientConfig{
					MaxAttempts:      3,
					CallBudget:       500 * time.Millisecond,
					BackoffBase:      10 * time.Millisecond,
					BackoffMax:       80 * time.Millisecond,
					BreakerThreshold: 4,
					BreakerCooldown:  2 * time.Second,
					Seed:             seed,
				})

			dead := make(map[int]bool)
			for epoch := 0; epoch < 30; epoch++ {
				// Mutate the fault state: toggle one node, maybe go lossy.
				victim := rng.Intn(nodes)
				if dead[victim] {
					mem.Revive(addrs[victim])
					delete(dead, victim)
				} else if len(dead) < nodes-2 {
					mem.Kill(addrs[victim])
					dead[victim] = true
				}
				if err := mem.SetDropRate([]float64{0, 0, 0.2}[rng.Intn(3)]); err != nil {
					t.Fatal(err)
				}

				for call := 0; call < 40; call++ {
					src := rng.Intn(nodes)
					dst := rng.Intn(nodes)
					if dead[src] || src == dst {
						continue
					}
					r.Call(addrs[src], addrs[dst], "ping")
				}
				now += time.Second

				if vs := invariants.CheckResilience(r.Resilience(), mem.Stats().Snapshot()); len(vs) != 0 {
					t.Fatalf("epoch %d: resilience invariants violated:\n%v", epoch, vs)
				}
			}
			snap := r.Resilience()
			if snap.Retries == 0 || snap.BreakerOpens == 0 || snap.HalfOpenProbes == 0 {
				t.Errorf("schedule did not exercise the policy: %+v", snap)
			}
		})
	}
}
