package chaos

import (
	"reflect"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 42})
	b := Generate(Config{Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := Generate(Config{Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules: %v", a)
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, profile := range []Profile{ProfileSafe, ProfileLossy} {
		cfg := Config{Seed: 7, Profile: profile}
		a := Run(cfg)
		b := Run(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different reports:\n%v\n%v", profile, a, b)
		}
	}
}

func TestSafeScenariosClean(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	sw := Sweep(Config{Seed: 1, Profile: ProfileSafe}, n, 4)
	for _, f := range sw.Failures {
		t.Errorf("safe scenario failed:\n%s", f)
	}
	if sw.LocateTotal == 0 || sw.TraceTotal == 0 {
		t.Fatalf("sweep ran no queries: %s", sw)
	}
	// The safe profile scores every query as an invariant, so a clean
	// sweep means perfect accuracy by construction.
	if sw.LocateOK != sw.LocateTotal || sw.TraceOK != sw.TraceTotal {
		t.Errorf("safe sweep not exact: %s", sw)
	}
}

func TestLossyScenariosWithinBounds(t *testing.T) {
	n := 15
	if testing.Short() {
		n = 5
	}
	sw := Sweep(Config{Seed: 1, Profile: ProfileLossy}, n, 4)
	for _, f := range sw.Failures {
		t.Errorf("lossy scenario failed:\n%s", f)
	}
}

func TestMinimizeShrinksFailingSchedule(t *testing.T) {
	// An impossible accuracy floor makes every lossy run fail its
	// bounds, giving the minimizer a deterministic failure to preserve.
	cfg := Config{Seed: 3, Profile: ProfileLossy, DropRate: 0.5, MinLocateOK: 2, MinTraceOK: 2, Epochs: 5}
	sched := Generate(cfg)
	if !RunSchedule(cfg, sched).Failed() {
		t.Fatal("setup: schedule unexpectedly passed")
	}
	min := Minimize(cfg, sched)
	if len(min.Epochs) >= len(sched.Epochs) {
		t.Errorf("minimizer did not shrink: %d -> %d epochs", len(sched.Epochs), len(min.Epochs))
	}
	if !RunSchedule(cfg, min).Failed() {
		t.Errorf("minimized schedule no longer fails: %s", min)
	}
	if min.Spec.ObjectsPerNode >= Generate(cfg).Spec.ObjectsPerNode && min.Spec.ObjectsPerNode != 1 {
		t.Logf("population not shed (ok if failure needs it): %d", min.Spec.ObjectsPerNode)
	}
}

func TestMinimizeLeavesPassingScheduleAlone(t *testing.T) {
	cfg := Config{Seed: 5, Profile: ProfileSafe}
	sched := Generate(cfg)
	min := Minimize(cfg, sched)
	if !reflect.DeepEqual(min, sched) {
		t.Errorf("passing schedule was modified:\n%v\n%v", sched, min)
	}
}
