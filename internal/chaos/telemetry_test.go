package chaos

import (
	"reflect"
	"testing"
)

// TestSweepTelemetryWorkerIndependent is the acceptance gate for the
// telemetry subsystem's determinism claim: the same sweep run with
// different worker counts must merge to a byte-identical telemetry
// exposition, because each scenario owns its registry and the merge is
// assembled in seed order.
func TestSweepTelemetryWorkerIndependent(t *testing.T) {
	cfg := Config{Seed: 11, Profile: ProfileSafe}
	n := 6
	if testing.Short() {
		n = 3
	}
	a := Sweep(cfg, n, 1)
	b := Sweep(cfg, n, 4)
	if !reflect.DeepEqual(a.Telemetry, b.Telemetry) {
		t.Errorf("sweep telemetry differs across worker counts:\n%+v\n%+v", a.Telemetry, b.Telemetry)
	}
	at, bt := a.Telemetry.Text(), b.Telemetry.Text()
	if at != bt {
		t.Fatalf("telemetry exposition not byte-identical:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", at, bt)
	}
	if len(a.Telemetry.Counters) == 0 || a.Telemetry.Spans == 0 {
		t.Fatalf("sweep telemetry empty:\n%s", at)
	}
}

// TestReportTelemetryPopulated checks a single scenario captures the
// whole stack's instruments: transport traffic, chord lookups, window
// flushes, and query spans.
func TestReportTelemetryPopulated(t *testing.T) {
	rep := Run(Config{Seed: 7, Profile: ProfileSafe})
	if rep.Failed() {
		t.Fatalf("scenario failed:\n%s", rep)
	}
	values := map[string]uint64{}
	for _, c := range rep.Telemetry.Counters {
		values[c.Name] = c.Value
	}
	for _, name := range []string{"transport.calls", "core.window.flushes", "core.locates", "core.traces"} {
		if values[name] == 0 {
			t.Errorf("counter %s = 0 after a full scenario\n%s", name, rep.Telemetry.Text())
		}
	}
	if rep.Telemetry.Spans == 0 {
		t.Error("no spans recorded")
	}
}
