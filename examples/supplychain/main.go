// Supplychain: a 4-tier network (factories → DCs → warehouses →
// stores) shipping EPC-tagged lots, comparing what the paper's group
// indexing saves over per-object indexing on realistic bulk flows —
// the workload its introduction motivates ("objects often move in
// groups").
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"peertrack/internal/core"
	"peertrack/internal/moods"
	"peertrack/internal/workload"
)

func main() {
	sc := workload.NewSupplyChain(4, 8, 16, 36) // 64 organisations
	// Full pallet loads: 800 cases read within a second as each pallet
	// rolls through a dock door — the bulk arrivals group indexing is
	// built for.
	shipments := sc.GenerateShipments(42, 12, 800, 15*time.Minute)
	fmt.Printf("supply chain: %d sites, %d shipments x %d objects\n\n",
		len(sc.AllNodes()), len(shipments), len(shipments[0].Objects))

	var grpMsgs, indMsgs uint64
	var sim *core.Network
	var sites map[moods.NodeName]moods.NodeName
	for _, mode := range []core.Mode{core.GroupIndexing, core.IndividualIndexing} {
		nw, siteOf, msgs, err := run(sc, shipments, mode)
		if err != nil {
			log.Fatal(err)
		}
		if mode == core.GroupIndexing {
			grpMsgs, sim, sites = msgs, nw, siteOf
		} else {
			indMsgs = msgs
		}
	}
	fmt.Printf("indexing cost, individual: %8d messages\n", indMsgs)
	fmt.Printf("indexing cost, group:      %8d messages  (%.1fx cheaper)\n\n",
		grpMsgs, float64(indMsgs)/float64(grpMsgs))

	// Trace one object from the last shipment end-to-end.
	obj := shipments[len(shipments)-1].Objects[0]
	peer := sim.Peers()[0]
	res, err := peer.FullTrace(obj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace of %s:\n", obj)
	for i, v := range res.Path {
		fmt.Printf("  %d. %-14s t+%v\n", i+1, sites[v.Node], v.Arrived.Round(time.Second))
	}
	fmt.Printf("(%d hops; the answer touches only the object's own path)\n", res.Hops)
}

// run plays all shipments through a fresh network in the given mode and
// returns the network, the peer→site naming, and the message count.
func run(sc *workload.SupplyChain, shipments []workload.Shipment, mode core.Mode) (*core.Network, map[moods.NodeName]moods.NodeName, uint64, error) {
	names := sc.AllNodes()
	nw, err := core.BuildNetwork(core.NetworkConfig{
		Nodes: len(names),
		Seed:  1,
		Peer:  core.Config{Mode: mode},
	})
	if err != nil {
		return nil, nil, 0, err
	}
	// Map supply-chain site names onto ring peers 1:1.
	siteOf := make(map[moods.NodeName]moods.NodeName, len(names))
	peerOf := make(map[moods.NodeName]moods.NodeName, len(names))
	for i, p := range nw.Peers() {
		siteOf[p.Name()] = names[i]
		peerOf[names[i]] = p.Name()
	}
	rng := rand.New(rand.NewSource(2))
	var horizon time.Duration
	for _, sh := range shipments {
		for _, obs := range sh.Observations(rng, 45*time.Minute, time.Second) {
			obs.Node = peerOf[obs.Node]
			if err := nw.ScheduleObservation(obs); err != nil {
				return nil, nil, 0, err
			}
			if obs.At > horizon {
				horizon = obs.At
			}
		}
	}
	if mode == core.GroupIndexing {
		nw.StartWindows(horizon + 2*time.Second)
	}
	nw.Run()
	return nw, siteOf, nw.Stats().Snapshot().Messages, nil
}
