// Aggregation: cases packed onto an SSCC pallet are invisible to RFID
// portals — only the pallet is read in transit. Containment events
// (EPCIS-style Pack/Unpack) let the network answer case-level trace
// queries anyway, by splicing the pallet's movements into each case's
// history.
package main

import (
	"fmt"
	"log"
	"time"

	"peertrack"
)

func main() {
	sim, err := peertrack.NewSimulation(peertrack.SimOptions{Nodes: 32, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	nodes := sim.Nodes()
	factory, dc, warehouse, store := nodes[2], nodes[9], nodes[17], nodes[26]

	// One pallet (SSCC) and 12 cases (SGTIN).
	pallet := "urn:epc:id:sscc:0614141.1234567890"
	cases := make([]string, 12)
	for i := range cases {
		cases[i] = fmt.Sprintf("urn:epc:id:sgtin:0614141.812345.%d", 9000+i)
	}

	// The factory reads every case and the pallet, packs, and ships.
	for _, c := range cases {
		sim.Observe(factory, c, time.Minute)
	}
	sim.Observe(factory, pallet, time.Minute)
	sim.Pack(factory, pallet, cases, 2*time.Minute)

	// In transit only the pallet is read.
	sim.Observe(dc, pallet, 1*time.Hour)
	sim.Observe(warehouse, pallet, 2*time.Hour)

	// The warehouse unpacks; one case is shelved at a store.
	sim.Unpack(warehouse, pallet, cases, 2*time.Hour+5*time.Minute)
	sim.Observe(store, cases[0], 3*time.Hour)

	sim.Run(4 * time.Hour)

	// A plain trace sees only the case's own reads...
	plain, _, err := sim.Trace(nodes[0], cases[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain trace of %s (%d stops):\n", cases[0], len(plain))
	for _, s := range plain {
		fmt.Printf("  %-10s t+%v\n", s.Node, s.Arrived)
	}

	// ...the resolved trace recovers the transit legs from the pallet.
	resolved, stats, err := sim.ResolveTrace(nodes[0], cases[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresolved trace (%d stops, %d hops):\n", len(resolved), stats.Hops)
	for _, s := range resolved {
		fmt.Printf("  %-10s t+%v\n", s.Node, s.Arrived)
	}

	// A case still aboard locates wherever the pallet last was.
	resolved1, _, _ := sim.ResolveTrace(nodes[0], cases[1])
	fmt.Printf("\ncase %s (never unpacked-read) resolves through %d stops, last: %s\n",
		cases[1], len(resolved1), resolved1[len(resolved1)-1].Node)
}
