// Quickstart: build a 64-organisation traceable network, move one
// RFID-tagged pallet through it, and answer the two queries the system
// exists for — "where is it now?" and "where has it been?".
package main

import (
	"fmt"
	"log"
	"time"

	"peertrack"
)

func main() {
	// A simulated network: 64 organisations on a Chord ring, group
	// indexing with adaptive capture windows (the defaults).
	sim, err := peertrack.NewSimulation(peertrack.SimOptions{Nodes: 64})
	if err != nil {
		log.Fatal(err)
	}
	nodes := sim.Nodes()

	// One pallet, identified by its EPC SGTIN-96 URN, travels
	// factory → distribution centre → regional warehouse → store.
	const pallet = "urn:epc:id:sgtin:0614141.812345.6789"
	route := []string{nodes[3], nodes[17], nodes[42], nodes[58]}
	for i, site := range route {
		// Each RFID portal reads the pallet as it arrives.
		at := time.Duration(i) * 30 * time.Minute
		if err := sim.Observe(site, pallet, at); err != nil {
			log.Fatal(err)
		}
	}

	// Play the simulation: capture windows close, prefix groups are
	// indexed at their gateway nodes, IOP links are stitched.
	sim.Run(2 * time.Hour)

	// Any organisation can ask. Query from one that never saw the
	// pallet:
	asker := nodes[30]

	where, stats, err := sim.Locate(asker, pallet, 100*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L(pallet, t=100min) = %s   (%d hops, %v)\n", where, stats.Hops, stats.Time)

	stops, stats, err := sim.Trace(asker, pallet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TR(pallet) — %d stops, %d hops, %v:\n", len(stops), stats.Hops, stats.Time)
	for i, s := range stops {
		fmt.Printf("  %d. %-10s (arrived t+%v)\n", i+1, s.Node, s.Arrived)
	}
	fmt.Printf("total protocol messages: %d\n", sim.Messages())
}
