// Recall: a contaminated production lot must be pulled from the
// market. Starting from nothing but the lot's EPC identifiers, the
// network locates every affected item and reconstructs its distribution
// path — the product-recall application from the paper's introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"peertrack/internal/core"
	"peertrack/internal/epc"
	"peertrack/internal/moods"
	"peertrack/internal/workload"
)

func main() {
	// A 48-site network: 2 factories, 6 DCs, 12 warehouses, 28 stores.
	sc := workload.NewSupplyChain(2, 6, 12, 28)
	names := sc.AllNodes()
	nw, err := core.BuildNetwork(core.NetworkConfig{
		Nodes: len(names),
		Seed:  3,
		Peer:  core.Config{Mode: core.GroupIndexing},
	})
	if err != nil {
		log.Fatal(err)
	}
	peerOf := map[moods.NodeName]moods.NodeName{}
	siteOf := map[moods.NodeName]moods.NodeName{}
	for i, p := range nw.Peers() {
		peerOf[names[i]] = p.Name()
		siteOf[p.Name()] = names[i]
	}

	// The plant produces 30 lots; lot #13 will turn out contaminated.
	gen := epc.NewGenerator(99, 1, 4)
	rng := rand.New(rand.NewSource(4))
	var badLot []moods.ObjectID
	var horizon time.Duration
	for lot := 0; lot < 30; lot++ {
		tags := gen.Lot(40)
		objs := make([]moods.ObjectID, len(tags))
		for i, tg := range tags {
			urn, _ := tg.URN()
			objs[i] = moods.ObjectID(urn)
		}
		if lot == 13 {
			badLot = objs
		}
		// Each lot ships down one route; cases split across 2-3 stores
		// at the warehouse stage.
		route := sc.Route(rng)
		depart := time.Duration(lot) * 20 * time.Minute
		for i, obj := range objs {
			at := depart
			for hop, site := range route {
				// The last hop (store) differs per third of the lot.
				target := site
				if hop == len(route)-1 {
					target = sc.Stores[(rng.Intn(3)*7+i)%len(sc.Stores)]
				}
				obs := moods.Observation{
					Object: obj,
					Node:   peerOf[target],
					At:     at + time.Duration(rng.Intn(30))*time.Second,
				}
				if err := nw.ScheduleObservation(obs); err != nil {
					log.Fatal(err)
				}
				if obs.At > horizon {
					horizon = obs.At
				}
				at += 40 * time.Minute
			}
		}
	}
	nw.StartWindows(horizon + 2*time.Second)
	nw.Run()
	fmt.Printf("network loaded: %d observations indexed with %d messages\n\n",
		nw.Oracle.Len(), nw.Stats().Snapshot().Messages)

	// RECALL. Quality control flags lot #13. Any site can run the
	// recall — here, the factory.
	asker := nw.Peers()[0]
	fmt.Printf("recalling lot of %d items (%s ...)\n\n", len(badLot), badLot[0])

	storeHits := map[moods.NodeName][]moods.ObjectID{}
	inTransit := 0
	totalHops := 0
	// Trace the whole lot with 8 concurrent queries.
	for _, r := range asker.TraceBatch(badLot, 8) {
		if r.Err != nil {
			log.Fatalf("trace %s: %v", r.Object, r.Err)
		}
		totalHops += r.Result.Hops
		last := r.Result.Path[len(r.Result.Path)-1]
		site := siteOf[last.Node]
		if len(r.Result.Path) < 4 {
			inTransit++
		}
		storeHits[site] = append(storeHits[site], r.Object)
	}

	sites := make([]moods.NodeName, 0, len(storeHits))
	for s := range storeHits {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	fmt.Println("current holdings of the contaminated lot:")
	for _, s := range sites {
		fmt.Printf("  %-14s %d items\n", s, len(storeHits[s]))
	}
	fmt.Printf("\nitems still in transit upstream: %d\n", inTransit)
	fmt.Printf("mean network hops per item trace: %.1f (no flooding — only the item's own path is visited)\n",
		float64(totalHops)/float64(len(badLot)))
}
