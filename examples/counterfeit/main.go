// Counterfeit: clone detection — the anti-counterfeiting application
// from the paper's introduction. A counterfeiter copies a genuine tag's
// EPC onto fake goods; the clone then produces capture events that are
// physically impossible for one object (two distant sites within less
// time than goods can travel). Because PeerTrack maintains each
// object's full movement path, any organisation can audit a suspicious
// EPC's trace for impossible transitions.
package main

import (
	"fmt"
	"log"
	"time"

	"peertrack"
)

// minTravel is the minimum plausible site-to-site transfer time in this
// network (trucks, not teleporters).
const minTravel = 30 * time.Minute

func main() {
	sim, err := peertrack.NewSimulation(peertrack.SimOptions{Nodes: 32, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	nodes := sim.Nodes()

	// The genuine item moves normally through four sites.
	const genuine = "urn:epc:id:sgtin:0614141.812345.5005"
	legit := []int{2, 9, 15, 22}
	for i, n := range legit {
		sim.Observe(nodes[n], genuine, time.Duration(i)*time.Hour)
	}

	// Meanwhile a cloned tag with the SAME EPC surfaces at an unrelated
	// site 10 minutes after the genuine item was read elsewhere.
	sim.Observe(nodes[28], genuine, 2*time.Hour+10*time.Minute)

	// A second EPC stays clean, for contrast.
	const clean = "urn:epc:id:sgtin:0614141.812345.5006"
	for i, n := range []int{4, 11, 19} {
		sim.Observe(nodes[n], clean, time.Duration(i)*2*time.Hour)
	}

	sim.Run(12 * time.Hour)

	for _, epcID := range []string{genuine, clean} {
		stops, _, err := sim.Trace(nodes[0], epcID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("audit %s (%d stops):\n", epcID, len(stops))
		alerts := auditTrace(stops)
		if len(alerts) == 0 {
			fmt.Println("  OK — every transition is physically plausible")
		}
		for _, a := range alerts {
			fmt.Printf("  ALERT — %s\n", a)
		}
		fmt.Println()
	}
}

// auditTrace flags transitions faster than minTravel — the signature of
// a cloned EPC appearing in two places at once.
func auditTrace(stops []peertrack.Stop) []string {
	var alerts []string
	for i := 1; i < len(stops); i++ {
		dt := stops[i].Arrived - stops[i-1].Arrived
		if dt < minTravel {
			alerts = append(alerts, fmt.Sprintf(
				"%s -> %s in %v (< %v): EPC cloned or reader spoofed",
				stops[i-1].Node, stops[i].Node, dt, minTravel))
		}
	}
	return alerts
}
