package peertrack_test

import (
	"fmt"
	"time"

	"peertrack"
)

// ExampleSimulation tracks one EPC-tagged pallet through a simulated
// 32-organisation network and answers the two core queries.
func ExampleSimulation() {
	sim, err := peertrack.NewSimulation(peertrack.SimOptions{Nodes: 32, Seed: 1})
	if err != nil {
		panic(err)
	}
	nodes := sim.Nodes()

	const pallet = "urn:epc:id:sgtin:0614141.812345.6789"
	sim.Observe(nodes[3], pallet, 0)
	sim.Observe(nodes[10], pallet, 30*time.Minute)
	sim.Observe(nodes[20], pallet, time.Hour)
	sim.Run(2 * time.Hour)

	stops, _, err := sim.Trace(nodes[0], pallet)
	if err != nil {
		panic(err)
	}
	fmt.Println("stops:", len(stops))

	where, _, err := sim.Locate(nodes[0], pallet, 45*time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println("at 45m the pallet was at the second stop:", where == stops[1].Node)
	// Output:
	// stops: 3
	// at 45m the pallet was at the second stop: true
}

// ExampleSimulation_containment shows case-level tracing through
// pallet aggregation: the case is only read at the ends, yet its
// resolved trace includes the pallet's transit stop.
func ExampleSimulation_containment() {
	sim, err := peertrack.NewSimulation(peertrack.SimOptions{Nodes: 16, Seed: 2})
	if err != nil {
		panic(err)
	}
	n := sim.Nodes()
	const pallet = "urn:epc:id:sscc:0614141.0000000001"
	const box = "urn:epc:id:sgtin:0614141.812345.1"

	sim.Observe(n[1], box, time.Minute)
	sim.Observe(n[1], pallet, time.Minute)
	sim.Pack(n[1], pallet, []string{box}, 2*time.Minute)
	sim.Observe(n[6], pallet, time.Hour) // only the pallet is read here
	sim.Unpack(n[6], pallet, []string{box}, time.Hour+time.Minute)
	sim.Observe(n[12], box, 2*time.Hour)
	sim.Run(3 * time.Hour)

	plain, _, _ := sim.Trace(n[0], box)
	resolved, _, _ := sim.ResolveTrace(n[0], box)
	fmt.Println("plain stops:", len(plain), "resolved stops:", len(resolved))
	// Output:
	// plain stops: 2 resolved stops: 3
}
