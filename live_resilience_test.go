package peertrack

import (
	"strings"
	"testing"
	"time"

	"peertrack/internal/transport"
)

// crash kills a live node without the Leave handshake: maintenance
// stops and the listener plus all pooled connections close, exactly
// what SIGKILL does to a trackd process. State is not handed off.
func crash(n *Node) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stopCh)
	n.wg.Wait()
	if n.gossip != nil {
		n.gossip.Stop()
	}
	n.tr.Close()
}

// A live ring with replication factor 2 and the resilient RPC layer
// must survive a hard crash: gossip rounds (driven by the kernel pump,
// not simulated time) declare the victim dead, chord repair routes
// around it, and reads fail over to the surviving replica — with the
// retry/breaker counters accounting for every redundant attempt.
func TestLiveFailoverWithReplicas(t *testing.T) {
	opts := NodeOptions{
		NetworkSize:       4,
		Replicas:          2,
		StabilizeEvery:    50 * time.Millisecond,
		WindowInterval:    50 * time.Millisecond,
		GossipEvery:       50 * time.Millisecond,
		ReplicaSyncEvery:  150 * time.Millisecond,
		RPCAttempts:       3,
		RPCAttemptTimeout: 250 * time.Millisecond,
		RPCBudget:         time.Second,
		RPCBackoff:        10 * time.Millisecond,
		BreakerThreshold:  4,
		BreakerCooldown:   300 * time.Millisecond,
	}
	nodes := make([]*Node, 4)
	for i := range nodes {
		n, err := StartNode("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, n := range nodes {
			if n.chord.Predecessor().IsZero() {
				converged = false
			}
		}
		if converged {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Each site observes a few objects; every put replicates its index
	// record to the ring successor synchronously.
	t0 := time.Now()
	objects := []string{"obj-a", "obj-b", "obj-c", "obj-d", "obj-e", "obj-f"}
	for i, obj := range objects {
		n := nodes[i%len(nodes)]
		if err := n.ObserveAt(obj, t0); err != nil {
			t.Fatal(err)
		}
		n.Flush()
	}

	// Crash the non-querying node holding the most index records, so
	// reads must fail over to replicas; node 0 stays alive to query.
	victim := 1
	best := -1
	for i, n := range nodes[1:] {
		if _, indexed := n.StorageStats(); indexed > best {
			best, victim = indexed, i+1
		}
	}
	victimAddr := nodes[victim].Addr()
	crash(nodes[victim])

	// The survivors' gossip agents must reach a dead verdict from live
	// rounds alone.
	q := nodes[0]
	deadline = time.Now().Add(10 * time.Second)
	for !q.gossip.IsDead(transport.Addr(victimAddr)) {
		if time.Now().After(deadline) {
			t.Fatal("gossip never declared the crashed node dead")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every object stays locatable across the crash window. Individual
	// locates may fail while the ring repairs; each must succeed within
	// the window, and once the breaker learns the dead peer the whole
	// sweep settles.
	for _, obj := range objects {
		var err error
		var loc string
		for attempt := 0; attempt < 50; attempt++ {
			if loc, _, err = q.Locate(obj, t0.Add(time.Millisecond)); err == nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("locate %s after crash: %v", obj, err)
		}
		if loc == "" {
			t.Fatalf("locate %s after crash: empty location", obj)
		}
	}

	// The wrapper saw the crash: retries or breaker activity, and its
	// accounting still conserves.
	snap, ok := q.Resilience()
	if !ok {
		t.Fatal("resilience disabled on a default node")
	}
	if snap.Retries == 0 && snap.BreakerOpens == 0 {
		t.Errorf("crash window left no resilience trace: %+v", snap)
	}
	if !snap.Conserves() {
		t.Errorf("live resilience counters do not conserve: %+v", snap)
	}
}

// A node started with NoResilience must not carry a wrapper, and its
// metrics must not claim resilience counters.
func TestLiveNoResilienceBaseline(t *testing.T) {
	n, err := StartNode("127.0.0.1:0", NodeOptions{NoResilience: true, GossipEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, ok := n.Resilience(); ok {
		t.Fatal("NoResilience node reports a resilience snapshot")
	}
	if n.gossip != nil {
		t.Fatal("GossipEvery<0 node still carries a membership agent")
	}
	if text := n.Telemetry().Snapshot().Text(); strings.Contains(text, "transport.resilient.") {
		t.Fatalf("baseline node exports resilient counters:\n%s", text)
	}
}
